// Concurrency tests: the engines are documented as safe for concurrent
// use after construction (immutable state + thread_local scratch in the
// vector kernels). These tests hammer shared objects from many threads
// and check every result against the single-threaded oracle — including
// the tricky case of one thread alternating between contexts of different
// sizes (which stresses the thread_local buffer resizing).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "baseline/systems.hpp"
#include "mont/modexp.hpp"
#include "mont/vector_mont.hpp"
#include "rsa/engine.hpp"
#include "rsa/key.hpp"
#include "rsa/pkcs1.hpp"
#include "ssl/session_cache.hpp"
#include "util/random.hpp"
#include "util/thread_pool.hpp"

namespace phissl {
namespace {

using bigint::BigInt;

TEST(Concurrency, SharedEngineManyThreads) {
  const rsa::PrivateKey& key = rsa::test_key(512);
  const rsa::Engine engine(key, rsa::EngineOptions{});

  // Precompute oracle answers single-threaded.
  util::Rng rng(1);
  constexpr int kOps = 24;
  std::vector<BigInt> inputs, expected;
  for (int i = 0; i < kOps; ++i) {
    inputs.push_back(BigInt::random_below(key.pub.n, rng));
    expected.push_back(engine.private_op(inputs.back()));
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = t; i < kOps; i += 4) {
        if (engine.private_op(inputs[static_cast<std::size_t>(i)]) !=
            expected[static_cast<std::size_t>(i)]) {
          mismatches++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Concurrency, OneThreadAlternatingContextSizes) {
  // The vector kernel's thread_local accumulators are resized per call;
  // alternating between two moduli of very different size in one thread
  // must not corrupt either computation.
  util::Rng rng(2);
  const BigInt m_small = BigInt::random_odd_exact_bits(128, rng);
  const BigInt m_large = BigInt::random_odd_exact_bits(2048, rng);
  const mont::VectorMontCtx small(m_small);
  const mont::VectorMontCtx large(m_large);

  for (int i = 0; i < 10; ++i) {
    const BigInt a = BigInt::random_below(m_small, rng);
    const BigInt b = BigInt::random_below(m_small, rng);
    const BigInt c = BigInt::random_below(m_large, rng);
    const BigInt d = BigInt::random_below(m_large, rng);
    mont::VectorMontCtx::Rep out_s, out_l;
    small.mul(small.to_mont(a), small.to_mont(b), out_s);
    large.mul(large.to_mont(c), large.to_mont(d), out_l);
    EXPECT_EQ(small.from_mont(out_s), (a * b).mod(m_small));
    EXPECT_EQ(large.from_mont(out_l), (c * d).mod(m_large));
  }
}

TEST(Concurrency, ParallelSignaturesAllVerify) {
  const rsa::PrivateKey& key = rsa::test_key(512);
  const rsa::Engine engine =
      baseline::make_engine(baseline::System::kPhiOpenSSL, key);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        const std::string msg =
            "thread " + std::to_string(t) + " msg " + std::to_string(i);
        const std::span<const std::uint8_t> bytes{
            reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
        const auto sig = rsa::sign_sha256(engine, bytes);
        if (!rsa::verify_sha256(engine, bytes, sig)) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Concurrency, DistinctEnginesDistinctKernelsInParallel) {
  // Three threads, three kernels, one key: all must agree.
  const rsa::PrivateKey& key = rsa::test_key(512);
  util::Rng rng(3);
  const BigInt m = BigInt::random_below(key.pub.n, rng);
  const BigInt expected = m.mod_pow(key.d, key.pub.n);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (const rsa::Kernel k :
       {rsa::Kernel::kScalar32, rsa::Kernel::kScalar64, rsa::Kernel::kVector}) {
    threads.emplace_back([&, k] {
      rsa::EngineOptions opts;
      opts.kernel = k;
      const rsa::Engine engine(key, opts);
      for (int i = 0; i < 5; ++i) {
        if (engine.private_op(m) != expected) mismatches++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Concurrency, ThreadPoolDrainRunsEverythingThenRejectsSubmit) {
  // The documented shutdown contract: work queued before shutdown() all
  // runs (no silent drops, every future becomes ready), and submit after
  // the drain begins is rejected rather than enqueued into a pool whose
  // workers will never run it.
  util::ThreadPool pool(3);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([&ran] { ran++; }));
  }
  pool.shutdown();
  EXPECT_EQ(ran.load(), 32);
  for (auto& f : futs) f.get();  // all ready; none broken

  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
  EXPECT_EQ(ran.load(), 32);  // the rejected task never ran

  pool.shutdown();  // idempotent
  EXPECT_THROW((void)pool.submit([] {}), std::runtime_error);
}

TEST(Concurrency, SessionCacheChurnStaysBoundedAndConsistent) {
  // 4 threads hammer one sharded cache with interleaved put/get over an
  // id space larger than the capacity, forcing constant LRU eviction in
  // every shard. Invariants under churn: (a) a get() that hits returns
  // the master that was stored for THAT id (we derive the master from
  // the id, so a cross-id smash is detectable), (b) the cache never
  // exceeds its capacity, (c) the counters balance. Runs in the TSan
  // ctest subset, which is what certifies the striped locking.
  ssl::SessionCache cache(
      ssl::SessionCacheConfig{.capacity = 64, .shards = 8});
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  constexpr std::uint8_t kIdSpace = 200;  // > capacity -> steady eviction

  const auto master_for = [](std::uint8_t tag) {
    ssl::MasterSecret m{};
    for (std::size_t i = 0; i < m.size(); ++i) {
      m[i] = static_cast<std::uint8_t>(tag ^ i);
    }
    return m;
  };
  const auto id_for = [](std::uint8_t tag) {
    ssl::SessionId id{};
    id[0] = tag;                       // vary the map-hash bytes
    id[ssl::kSessionIdSize - 1] = tag; // vary the shard-selection bytes
    return id;
  };

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(static_cast<std::uint64_t>(t) + 1);
      for (int op = 0; op < kOpsPerThread; ++op) {
        const auto tag = static_cast<std::uint8_t>(rng.next_u32() % kIdSpace);
        if (rng.next_u32() % 2 == 0) {
          cache.put(id_for(tag), master_for(tag));
        } else {
          const auto got = cache.get(id_for(tag));
          if (got.has_value() && *got != master_for(tag)) bad++;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_LE(cache.size(), 64u);
  const ssl::SessionCacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread - st.puts);
  EXPECT_GT(st.evictions, 0u);
}

}  // namespace
}  // namespace phissl
