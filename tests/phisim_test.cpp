// Tests for the KNC cycle-cost simulator: profile construction mirrors the
// real kernels' asymptotics, and the core/chip model obeys the documented
// KNC behaviours (single-thread issue gap, >=2-thread saturation,
// near-linear scaling across cores, bandwidth ceiling).
#include <gtest/gtest.h>

#include "baseline/systems.hpp"
#include "phisim/core_model.hpp"
#include "phisim/offload_model.hpp"
#include "phisim/profile.hpp"

namespace phissl::phisim {
namespace {

TEST(Profile, VectorMulCountsScaleQuadratically) {
  const KernelProfile p1 = profile_vector_mont_mul(1024);
  const KernelProfile p2 = profile_vector_mont_mul(2048);
  // d doubles -> sweeps = 2*d*(pd/16) roughly quadruples.
  EXPECT_GT(p2.vec_mul, 3.0 * p1.vec_mul);
  EXPECT_LT(p2.vec_mul, 5.5 * p1.vec_mul);
  EXPECT_GT(p1.vec_mul, 0.0);
  EXPECT_GT(p1.bytes_touched, 0.0);
  EXPECT_LT(p1.serial_fraction, 1.0);
}

TEST(Profile, ScalarMulCountsScaleQuadratically) {
  const KernelProfile p1 = profile_scalar32_mont_mul(1024);
  const KernelProfile p2 = profile_scalar32_mont_mul(2048);
  EXPECT_NEAR(p2.scalar_mul32 / p1.scalar_mul32, 4.0, 0.2);
  EXPECT_DOUBLE_EQ(p1.serial_fraction, 1.0);
  // 64-bit limbs: 4x fewer multiplies than 32-bit at the same size.
  const KernelProfile p64 = profile_scalar64_mont_mul(1024);
  EXPECT_NEAR(p1.scalar_mul32 / p64.scalar_mul64, 4.0, 0.2);
}

TEST(Profile, ModexpScalesWithExponentBits) {
  const KernelProfile mul = profile_vector_mont_mul(2048);
  const KernelProfile e1 =
      profile_modexp(mul, 1024, rsa::Schedule::kFixedWindow, 5);
  const KernelProfile e2 =
      profile_modexp(mul, 2048, rsa::Schedule::kFixedWindow, 5);
  EXPECT_GT(e2.vec_mul, 1.7 * e1.vec_mul);
  EXPECT_LT(e2.vec_mul, 2.3 * e1.vec_mul);
}

TEST(Profile, FixedWindowBeatsBinary) {
  const KernelProfile mul = profile_scalar32_mont_mul(1024);
  const KernelProfile w1 =
      profile_modexp(mul, 1024, rsa::Schedule::kFixedWindow, 1);
  const KernelProfile w5 =
      profile_modexp(mul, 1024, rsa::Schedule::kFixedWindow, 5);
  // w=1 does ~2*bits muls; w=5 does ~1.2*bits: clearly fewer.
  EXPECT_LT(w5.scalar_mul32, 0.75 * w1.scalar_mul32);
}

TEST(Profile, CrtHalvesWork) {
  rsa::EngineOptions opts;  // vector + fixed window
  opts.use_crt = true;
  const KernelProfile crt = profile_rsa_private(2048, opts);
  opts.use_crt = false;
  const KernelProfile nocrt = profile_rsa_private(2048, opts);
  // CRT: 2 exponentiations at half size (1/4 mul cost, 1/2 exponent)
  // => ~4x less multiply work.
  EXPECT_GT(nocrt.vec_mul / crt.vec_mul, 2.5);
  EXPECT_LT(nocrt.vec_mul / crt.vec_mul, 5.0);
}

TEST(Profile, PublicOpMuchCheaperThanPrivate) {
  const rsa::EngineOptions opts;
  const KernelProfile pub = profile_rsa_public(2048, opts);
  const KernelProfile priv = profile_rsa_private(2048, opts);
  EXPECT_LT(pub.vec_mul * 5.0, priv.vec_mul);
}

TEST(CoreModel, SingleThreadPaysIssueGap) {
  const CoreModel core;
  KernelProfile p;
  p.vec_alu = 1000;
  p.serial_fraction = 0.0;  // no stalls: isolate the issue-gap effect
  const double t1 = core.throughput_per_cycle(p, 1);
  const double t2 = core.throughput_per_cycle(p, 2);
  EXPECT_NEAR(t2 / t1, 2.0, 1e-9);
}

TEST(CoreModel, SaturatesAtIssueBandwidth) {
  const CoreModel core;
  KernelProfile p;
  p.vec_alu = 1000;
  p.serial_fraction = 0.0;
  const double t2 = core.throughput_per_cycle(p, 2);
  const double t4 = core.throughput_per_cycle(p, 4);
  EXPECT_NEAR(t4, t2, 1e-12);  // already saturated at 2 threads
  EXPECT_NEAR(t4, 1.0 / 1000.0, 1e-9);
}

TEST(CoreModel, StallsExtendSaturationPoint) {
  // A high-stall kernel keeps gaining through 3-4 threads (latency hiding).
  const CoreModel core;
  KernelProfile p = profile_scalar32_mont_mul(1024);
  const double t1 = core.throughput_per_cycle(p, 1);
  const double t2 = core.throughput_per_cycle(p, 2);
  const double t3 = core.throughput_per_cycle(p, 3);
  EXPECT_GT(t2, 1.5 * t1);
  EXPECT_GT(t3, t2);
}

TEST(CoreModel, MonotoneInThreads) {
  const CoreModel core;
  for (const KernelProfile& p :
       {profile_vector_mont_mul(2048), profile_scalar32_mont_mul(2048),
        profile_scalar64_mont_mul(2048)}) {
    double prev = 0;
    for (int t = 1; t <= 4; ++t) {
      const double cur = core.throughput_per_cycle(p, t);
      EXPECT_GE(cur, prev - 1e-15) << p.label << " t=" << t;
      prev = cur;
    }
  }
}

TEST(CoreModel, VectorKernelBeatsScalarAt2048) {
  // The heart of the paper: per-core, the vectorized Montgomery multiply
  // takes far fewer cycles than the word-serial scalar ones.
  const CoreModel core;
  const double v = core.latency_cycles(profile_vector_mont_mul(2048), 4);
  const double s32 = core.latency_cycles(profile_scalar32_mont_mul(2048), 4);
  const double s64 = core.latency_cycles(profile_scalar64_mont_mul(2048), 4);
  EXPECT_GT(s32 / v, 4.0);
  EXPECT_GT(s64 / v, 1.5);
  EXPECT_GT(s32, s64);  // 32-bit scalar port slower than 64-bit
}

TEST(ChipModel, ScatterScalesNearLinearlyAcrossCores) {
  const ChipModel chip;
  rsa::EngineOptions opts;
  const KernelProfile p = profile_rsa_private(2048, opts);
  const double t1 = chip.throughput_ops_s(p, 1);
  const double t60 = chip.throughput_ops_s(p, 60);
  EXPECT_GT(t60 / t1, 50.0);
  EXPECT_LE(t60 / t1, 60.5);
}

TEST(ChipModel, GainsContinuePast60Threads) {
  // 2 threads/core fills the issue gap: 120 threads > 60 threads.
  const ChipModel chip;
  const KernelProfile p = profile_rsa_private(2048, rsa::EngineOptions{});
  const double t60 = chip.throughput_ops_s(p, 60);
  const double t120 = chip.throughput_ops_s(p, 120);
  const double t240 = chip.throughput_ops_s(p, 240);
  EXPECT_GT(t120, 1.3 * t60);
  EXPECT_GE(t240, t120);
}

TEST(ChipModel, ClampsToCapacity) {
  const ChipModel chip;
  const KernelProfile p = profile_rsa_private(2048, rsa::EngineOptions{});
  EXPECT_DOUBLE_EQ(chip.throughput_ops_s(p, 240),
                   chip.throughput_ops_s(p, 10000));
}

TEST(ChipModel, CompactNeverBeatsScatterUnderSubscription) {
  const ChipModel chip;
  const KernelProfile p = profile_rsa_private(2048, rsa::EngineOptions{});
  for (int t : {1, 4, 16, 60, 120, 240}) {
    EXPECT_GE(chip.throughput_ops_s(p, t, Affinity::kScatter) + 1e-9,
              chip.throughput_ops_s(p, t, Affinity::kCompact))
        << t;
  }
}

TEST(ChipModel, BandwidthCeilingApplies) {
  const ChipModel chip;
  KernelProfile p;
  p.vec_alu = 1.0;  // virtually free compute
  p.bytes_touched = 1e9;  // 1 GB per op
  const double ops = chip.throughput_ops_s(p, 240);
  EXPECT_LE(ops, chip.config().mem_bw_bytes_per_s / 1e9 + 1e-6);
}

TEST(ChipModel, Rsa2048LatencyInPlausibleKncRange) {
  // Calibration guard: one RSA-2048 private op (CRT, vectorized) on a KNC
  // core at ~1 GHz should land in single-digit milliseconds; the scalar
  // 32-bit port in tens of milliseconds. (Order-of-magnitude check, not a
  // cycle-exact claim.)
  const ChipModel chip;
  const double phi_ms =
      1e3 * chip.op_latency_s(
                profile_rsa_private(
                    2048, baseline::options_for(baseline::System::kPhiOpenSSL)),
                1);
  const double mpss_ms =
      1e3 * chip.op_latency_s(
                profile_rsa_private(
                    2048,
                    baseline::options_for(baseline::System::kMpssLibcrypto)),
                1);
  EXPECT_GT(phi_ms, 0.5);
  EXPECT_LT(phi_ms, 50.0);
  EXPECT_GT(mpss_ms, phi_ms);
  EXPECT_LT(mpss_ms, 500.0);
}

TEST(ChipModel, PaperHeadlineShapeMontExp) {
  // E3's shape: full-size Montgomery exponentiation, PhiOpenSSL vs the two
  // scalar references, single stream. The paper reports up to 15.3x; we
  // require the simulated ratio to be >1 everywhere and large (>6x)
  // against the 32-bit scalar port at 4096 bits.
  const ChipModel chip;
  for (std::size_t bits : {1024u, 2048u, 4096u}) {
    const KernelProfile vec = profile_modexp(profile_vector_mont_mul(bits),
                                             bits, rsa::Schedule::kFixedWindow,
                                             0);
    const KernelProfile s32 = profile_modexp(profile_scalar32_mont_mul(bits),
                                             bits,
                                             rsa::Schedule::kSlidingWindow, 0);
    const KernelProfile s64 = profile_modexp(profile_scalar64_mont_mul(bits),
                                             bits,
                                             rsa::Schedule::kSlidingWindow, 0);
    const double v = chip.op_latency_s(vec, 4);
    EXPECT_GT(chip.op_latency_s(s32, 4) / v, bits >= 4096 ? 5.0 : 3.0) << bits;
    EXPECT_GT(chip.op_latency_s(s64, 4) / v, 1.2) << bits;
  }
}

}  // namespace
}  // namespace phissl::phisim

namespace phissl::phisim {
namespace {

TEST(OffloadModel, TransferCostsDominateSmallBatches) {
  const OffloadModel model;
  const auto profile = profile_rsa_private(2048, rsa::EngineOptions{});
  // A single op pays full dispatch latency; per-op cost falls with batch.
  const double b1 = model.offload_batch_seconds(profile, 1, 256, 256);
  const double b64 = model.offload_batch_seconds(profile, 64, 256, 256) / 64.0;
  const double b4096 =
      model.offload_batch_seconds(profile, 4096, 256, 256) / 4096.0;
  EXPECT_GT(b1, b64);
  EXPECT_GT(b64, b4096);
  EXPECT_DOUBLE_EQ(model.offload_batch_seconds(profile, 0, 256, 256), 0.0);
}

TEST(OffloadModel, BreakEvenMovesWithHostSpeed) {
  const OffloadModel model;
  const auto profile = profile_rsa_private(2048, rsa::EngineOptions{});
  // Slow host (10 ms/op, 1 core): card wins at a small batch.
  const std::size_t be_slow =
      model.break_even_batch(profile, 10e-3, 1, 256, 256);
  // Fast host (0.5 ms/op, 16 cores): needs a much larger batch or never.
  const std::size_t be_fast =
      model.break_even_batch(profile, 0.5e-3, 16, 256, 256);
  ASSERT_NE(be_slow, 0u);
  EXPECT_TRUE(be_fast == 0 || be_fast > be_slow);
}

TEST(OffloadModel, HostScalingLinear) {
  EXPECT_DOUBLE_EQ(OffloadModel::host_batch_seconds(1e-3, 100, 1), 0.1);
  EXPECT_DOUBLE_EQ(OffloadModel::host_batch_seconds(1e-3, 100, 4), 0.025);
}

}  // namespace
}  // namespace phissl::phisim
