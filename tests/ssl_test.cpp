// Handshake state-machine tests: full happy path, the abbreviated
// (resumption) path, every failure path (wrong suite, wrong certificate,
// corrupted key exchange, bad Finished, out-of-order messages), the
// session cache, and the multithreaded driver.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "baseline/systems.hpp"
#include "rsa/key.hpp"
#include "rsa/pkcs1.hpp"
#include "ssl/batch_decrypt.hpp"
#include "ssl/driver.hpp"
#include "ssl/handshake.hpp"
#include "ssl/session_cache.hpp"
#include "util/random.hpp"

namespace phissl::ssl {
namespace {

class HandshakeTest : public ::testing::Test {
 protected:
  HandshakeTest()
      : server_engine_(rsa::test_key(1024), rsa::EngineOptions{}),
        client_engine_(rsa::test_key(1024).pub, rsa::EngineOptions{}) {}

  // Runs a full handshake to completion; returns the client's resumable
  // handle. Fails the test on any alert.
  ResumableSession full_handshake(SessionCache* cache = nullptr) {
    ServerHandshake server(server_engine_, rng_, cache);
    ClientHandshake client(client_engine_, rng_);
    const auto flight = server.on_client_hello(client.start());
    EXPECT_TRUE(flight.ok());
    EXPECT_FALSE(flight.value().hello.resumed);
    const auto kex = client.on_server_hello(flight.value().hello,
                                            *flight.value().certificate);
    EXPECT_TRUE(kex.ok());
    const auto fin =
        server.on_key_exchange(kex.value().first, kex.value().second);
    EXPECT_TRUE(fin.ok());
    EXPECT_TRUE(client.on_server_finished(fin.value()).ok());
    EXPECT_EQ(*client.master(), *server.master());
    EXPECT_FALSE(client.resumed());
    EXPECT_FALSE(server.resumed());
    return client.resumable();
  }

  rsa::Engine server_engine_;
  rsa::Engine client_engine_;
  util::Rng rng_{99};
};

TEST_F(HandshakeTest, FullHandshakeEstablishesSharedMaster) {
  full_handshake();
}

TEST_F(HandshakeTest, SessionKeysAgreeAcrossSides) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  const auto fin = server.on_key_exchange(kex.value().first, kex.value().second);
  ASSERT_TRUE(fin.ok());
  ASSERT_TRUE(client.on_server_finished(fin.value()).ok());
  const SessionKeys sk = server.session_keys();
  const SessionKeys ck = client.session_keys();
  EXPECT_EQ(sk.client_enc_key, ck.client_enc_key);
  EXPECT_EQ(sk.server_mac_key, ck.server_mac_key);
}

TEST_F(HandshakeTest, ResumptionSkipsRsaAndEstablishes) {
  SessionCache cache;
  const ResumableSession ticket = full_handshake(&cache);
  EXPECT_EQ(cache.size(), 1u);

  // Abbreviated handshake with a PUBLIC-ONLY check: no private op runs
  // (decrypt_pkcs1 is never called on this path).
  ServerHandshake server(server_engine_, rng_, &cache);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start(ticket));
  ASSERT_TRUE(flight.ok());
  EXPECT_TRUE(flight.value().hello.resumed);
  EXPECT_FALSE(flight.value().certificate.has_value());
  ASSERT_TRUE(flight.value().finished.has_value());

  const auto client_fin =
      client.on_resumed_hello(flight.value().hello, *flight.value().finished);
  ASSERT_TRUE(client_fin.ok());
  ASSERT_TRUE(server.on_resumed_client_finished(client_fin.value()).ok());

  EXPECT_TRUE(client.resumed());
  EXPECT_TRUE(server.resumed());
  EXPECT_EQ(*client.master(), *server.master());
  EXPECT_EQ(*client.master(), ticket.master);  // reused verbatim
  // Fresh randoms => fresh traffic keys even with the same master.
  const SessionKeys keys = client.session_keys();
  EXPECT_EQ(keys.client_enc_key, server.session_keys().client_enc_key);
}

TEST_F(HandshakeTest, ResumptionCanRepeat) {
  SessionCache cache;
  ResumableSession ticket = full_handshake(&cache);
  for (int i = 0; i < 3; ++i) {
    ServerHandshake server(server_engine_, rng_, &cache);
    ClientHandshake client(client_engine_, rng_);
    const auto flight = server.on_client_hello(client.start(ticket));
    ASSERT_TRUE(flight.ok());
    ASSERT_TRUE(flight.value().hello.resumed) << i;
    const auto cf =
        client.on_resumed_hello(flight.value().hello, *flight.value().finished);
    ASSERT_TRUE(cf.ok()) << i;
    ASSERT_TRUE(server.on_resumed_client_finished(cf.value()).ok()) << i;
    ticket = client.resumable();  // same id+master each time
  }
}

TEST_F(HandshakeTest, UnknownSessionIdFallsBackToFull) {
  SessionCache cache;
  ResumableSession bogus;
  rng_.fill_bytes(bogus.id.data(), bogus.id.size());
  rng_.fill_bytes(bogus.master.data(), bogus.master.size());

  ServerHandshake server(server_engine_, rng_, &cache);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start(bogus));
  ASSERT_TRUE(flight.ok());
  EXPECT_FALSE(flight.value().hello.resumed);  // cache miss -> full
  ASSERT_TRUE(flight.value().certificate.has_value());
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
}

TEST_F(HandshakeTest, ResumptionAfterEvictionFallsBackToFull) {
  // A ticket the cache has since evicted is a valid-looking offer the
  // server no longer knows: it must silently run a full handshake (new
  // session id, certificate, RSA key exchange), not fail.
  SessionCache cache(SessionCacheConfig{.capacity = 1, .shards = 1});
  const ResumableSession ticket = full_handshake(&cache);
  full_handshake(&cache);  // second session evicts the first
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_GE(cache.stats().evictions, 1u);

  ServerHandshake server(server_engine_, rng_, &cache);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start(ticket));
  ASSERT_TRUE(flight.ok());
  EXPECT_FALSE(flight.value().hello.resumed);
  ASSERT_TRUE(flight.value().certificate.has_value());
  EXPECT_NE(flight.value().hello.session_id, ticket.id);
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
  const auto fin =
      server.on_key_exchange(kex.value().first, kex.value().second);
  ASSERT_TRUE(fin.ok());
  EXPECT_TRUE(client.on_server_finished(fin.value()).ok());
  EXPECT_FALSE(server.resumed());
}

TEST_F(HandshakeTest, BatchedDecrypterCompletesFullHandshake) {
  BatchDecryptService svc(rsa::test_key(1024),
                          BatchDecryptConfig{.dispatch_threads = 1});
  ServerHandshake server(server_engine_, rng_, nullptr, &svc);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  ASSERT_TRUE(flight.ok());
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
  const auto fin =
      server.on_key_exchange(kex.value().first, kex.value().second);
  ASSERT_TRUE(fin.ok());
  EXPECT_TRUE(client.on_server_finished(fin.value()).ok());
  EXPECT_EQ(*client.master(), *server.master());
  const auto st = svc.stats();
  EXPECT_EQ(st.requests, 1u);
  EXPECT_GE(st.batches, 1u);
}

TEST_F(HandshakeTest, BatchedDecrypterRejectsMalformedUniformly) {
  BatchDecryptService svc(rsa::test_key(1024), BatchDecryptConfig{});
  const std::size_t k = server_engine_.pub().byte_size();
  // Wrong size, value >= n, and bad padding all surface as nullopt.
  EXPECT_FALSE(svc.decrypt_premaster(std::vector<std::uint8_t>(k - 1, 0))
                   .has_value());
  EXPECT_FALSE(svc.decrypt_premaster(std::vector<std::uint8_t>(k, 0xff))
                   .has_value());
  std::vector<std::uint8_t> one(k, 0);
  one.back() = 1;
  EXPECT_FALSE(svc.decrypt_premaster(one).has_value());
  // And through the handshake they are all kBadFinished.
  ServerHandshake server(server_engine_, rng_, nullptr, &svc);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  auto kex = client.on_server_hello(flight.value().hello,
                                    *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
  ClientKeyExchange mauled = kex.value().first;
  mauled.encrypted_premaster.assign(k, 0);
  mauled.encrypted_premaster.back() = 1;
  const auto fin = server.on_key_exchange(mauled, kex.value().second);
  ASSERT_FALSE(fin.ok());
  EXPECT_EQ(fin.alert(), Alert::kBadFinished);
}

TEST_F(HandshakeTest, ResumptionWithWrongMasterRejected) {
  SessionCache cache;
  ResumableSession ticket = full_handshake(&cache);
  ticket.master[0] ^= 1;  // client remembers a wrong master

  ServerHandshake server(server_engine_, rng_, &cache);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start(ticket));
  ASSERT_TRUE(flight.ok());
  ASSERT_TRUE(flight.value().hello.resumed);
  // The server's Finished is keyed by the true master: client must reject.
  const auto cf =
      client.on_resumed_hello(flight.value().hello, *flight.value().finished);
  ASSERT_FALSE(cf.ok());
  EXPECT_EQ(cf.alert(), Alert::kBadFinished);
}

TEST_F(HandshakeTest, RejectsUnknownCipherSuites) {
  ServerHandshake server(server_engine_, rng_);
  ClientHello ch;
  ch.cipher_suites = {0x0000, 0x1301};  // no RSA suite offered
  const auto flight = server.on_client_hello(ch);
  ASSERT_FALSE(flight.ok());
  EXPECT_EQ(flight.alert(), Alert::kHandshakeFailure);
}

TEST_F(HandshakeTest, ClientRejectsWrongCertificate) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  ASSERT_TRUE(flight.ok());
  Certificate bad_cert;
  bad_cert.server_key = rsa::test_key(2048).pub;  // different key
  const auto kex = client.on_server_hello(flight.value().hello, bad_cert);
  ASSERT_FALSE(kex.ok());
  EXPECT_EQ(kex.alert(), Alert::kHandshakeFailure);
}

TEST_F(HandshakeTest, ServerRejectsCorruptedKeyExchange) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  auto kex = client.on_server_hello(flight.value().hello,
                                    *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
  auto bad = kex.value().first;
  bad.encrypted_premaster[10] ^= 0x40;
  const auto fin = server.on_key_exchange(bad, kex.value().second);
  ASSERT_FALSE(fin.ok());
  EXPECT_TRUE(fin.alert() == Alert::kDecryptError ||
              fin.alert() == Alert::kBadFinished);
}

TEST_F(HandshakeTest, BleichenbacherUniformAlert) {
  // RFC 5246 §7.4.7.1 regression: every way a ClientKeyExchange can be
  // wrong — non-conforming PKCS#1 padding, conforming padding around a
  // wrong-length premaster, conforming padding around a wrong-but-right-
  // length premaster — must fail identically, at the Finished check,
  // with kBadFinished. A distinct alert for the padding cases is a
  // Bleichenbacher decryption oracle.
  const std::size_t k = server_engine_.pub().byte_size();

  // (a) Non-conforming padding: the k-byte encoding of 1 decrypts to
  // em = 00..01, which does not start 00 02.
  std::vector<std::uint8_t> bad_padding(k, 0);
  bad_padding.back() = 1;
  // (b) Conforming padding, wrong premaster length (10 != 48 bytes).
  std::vector<std::uint8_t> short_premaster(10, 0xab);
  // (c) Conforming padding, right length, wrong bytes.
  std::vector<std::uint8_t> wrong_premaster(kPremasterSize, 0xcd);

  const std::vector<std::vector<std::uint8_t>> ciphertexts = {
      bad_padding,
      rsa::encrypt_pkcs1(client_engine_, short_premaster, rng_),
      rsa::encrypt_pkcs1(client_engine_, wrong_premaster, rng_),
  };

  for (std::size_t i = 0; i < ciphertexts.size(); ++i) {
    ServerHandshake server(server_engine_, rng_);
    ClientHandshake client(client_engine_, rng_);
    const auto flight = server.on_client_hello(client.start());
    ASSERT_TRUE(flight.ok());
    auto kex = client.on_server_hello(flight.value().hello,
                                      *flight.value().certificate);
    ASSERT_TRUE(kex.ok());
    ClientKeyExchange mauled = kex.value().first;
    mauled.encrypted_premaster = ciphertexts[i];
    const auto fin = server.on_key_exchange(mauled, kex.value().second);
    ASSERT_FALSE(fin.ok()) << "case " << i;
    // Exactly kBadFinished — never kDecryptError — for every case.
    EXPECT_EQ(fin.alert(), Alert::kBadFinished) << "case " << i;
  }
}

TEST_F(HandshakeTest, ServerRejectsBadClientFinished) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  auto kex = client.on_server_hello(flight.value().hello,
                                    *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
  Finished bad_fin = kex.value().second;
  bad_fin.verify_data[0] ^= 1;
  const auto fin = server.on_key_exchange(kex.value().first, bad_fin);
  ASSERT_FALSE(fin.ok());
  EXPECT_EQ(fin.alert(), Alert::kBadFinished);
}

TEST_F(HandshakeTest, ClientRejectsBadServerFinished) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  auto fin = server.on_key_exchange(kex.value().first, kex.value().second);
  ASSERT_TRUE(fin.ok());
  Finished bad = fin.value();
  bad.verify_data[kVerifyDataSize - 1] ^= 0x80;
  const auto done = client.on_server_finished(bad);
  ASSERT_FALSE(done.ok());
  EXPECT_EQ(done.alert(), Alert::kBadFinished);
}

TEST_F(HandshakeTest, OutOfOrderMessagesRejected) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  // KeyExchange before ClientHello.
  const auto early = server.on_key_exchange(ClientKeyExchange{}, Finished{});
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.alert(), Alert::kUnexpectedMessage);
  // Resumed-finished on the full path.
  EXPECT_FALSE(server.on_resumed_client_finished(Finished{}).ok());
  // Hello twice.
  const auto flight = server.on_client_hello(client.start());
  ASSERT_TRUE(flight.ok());
  const auto again = server.on_client_hello(client.start());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.alert(), Alert::kUnexpectedMessage);
  // Client: server hello before start is rejected.
  ClientHandshake fresh(client_engine_, rng_);
  const auto bad = fresh.on_server_hello(flight.value().hello,
                                         *flight.value().certificate);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.alert(), Alert::kUnexpectedMessage);
}

TEST_F(HandshakeTest, SessionsHaveDistinctMasters) {
  MasterSecret first{};
  for (int i = 0; i < 2; ++i) {
    ServerHandshake server(server_engine_, rng_);
    ClientHandshake client(client_engine_, rng_);
    const auto flight = server.on_client_hello(client.start());
    const auto kex = client.on_server_hello(flight.value().hello,
                                            *flight.value().certificate);
    const auto fin =
        server.on_key_exchange(kex.value().first, kex.value().second);
    ASSERT_TRUE(fin.ok());
    if (i == 0) {
      first = *server.master();
    } else {
      EXPECT_NE(*server.master(), first);
    }
  }
}

TEST(SessionCacheTest, PutGetEvict) {
  // Single shard so all three ids compete for the same capacity.
  SessionCache cache(SessionCacheConfig{.capacity = 2, .shards = 1});
  SessionId a{}, b{}, c{};
  a[0] = 1;
  b[0] = 2;
  c[0] = 3;
  MasterSecret m{};
  m[0] = 9;
  cache.put(a, m);
  cache.put(b, m);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get(a).has_value());  // touches a: b is now the LRU
  cache.put(c, m);                        // evicts the LRU (b)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get(a).has_value());
  EXPECT_FALSE(cache.get(b).has_value());
  EXPECT_TRUE(cache.get(c).has_value());
  // Re-put of an existing id is an update, not an insert.
  MasterSecret m2{};
  m2[0] = 7;
  cache.put(a, m2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ((*cache.get(a))[0], 7);
}

TEST(SessionCacheTest, LruOrderFollowsRecency) {
  SessionCache cache(SessionCacheConfig{.capacity = 3, .shards = 1});
  MasterSecret m{};
  SessionId ids[4] = {};
  for (int i = 0; i < 4; ++i) ids[i][0] = static_cast<std::uint8_t>(i + 1);
  cache.put(ids[0], m);
  cache.put(ids[1], m);
  cache.put(ids[2], m);
  // Recency now [2, 1, 0]; re-putting 0 promotes it -> [0, 2, 1].
  cache.put(ids[0], m);
  cache.put(ids[3], m);  // evicts 1
  EXPECT_TRUE(cache.get(ids[0]).has_value());
  EXPECT_FALSE(cache.get(ids[1]).has_value());
  EXPECT_TRUE(cache.get(ids[2]).has_value());
  EXPECT_TRUE(cache.get(ids[3]).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SessionCacheTest, ShardsPartitionCapacityAndCountStats) {
  // 4 shards x 2 entries. Shard selection folds the LAST id bytes, so
  // vary the final byte to spread ids and a middle byte to vary keys.
  SessionCache cache(SessionCacheConfig{.capacity = 8, .shards = 4});
  EXPECT_EQ(cache.shard_count(), 4u);
  MasterSecret m{};
  // Three ids landing in the SAME shard (identical last bytes): the
  // shard's 2-entry budget must evict, even though the cache is far
  // from its total capacity.
  SessionId s1{}, s2{}, s3{};
  s1[0] = 1;
  s2[0] = 2;
  s3[0] = 3;
  cache.put(s1, m);
  cache.put(s2, m);
  cache.put(s3, m);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.get(s1).has_value());  // the shard's LRU was s1
  const SessionCacheStats st = cache.stats();
  EXPECT_EQ(st.puts, 3u);
  EXPECT_EQ(st.misses, 1u);
  // Ids differing in the last byte scatter across shards: all four fit
  // even though one shard only holds two.
  SessionId spread[4] = {};
  for (int i = 0; i < 4; ++i) {
    spread[i][kSessionIdSize - 1] = static_cast<std::uint8_t>(i);
  }
  for (const auto& id : spread) cache.put(id, m);
  for (const auto& id : spread) EXPECT_TRUE(cache.get(id).has_value());
}

TEST(SessionCacheTest, TtlExpiresEntriesLazily) {
  SessionCache cache(SessionCacheConfig{
      .capacity = 4, .shards = 1, .ttl = std::chrono::milliseconds(1)});
  SessionId id{};
  id[0] = 1;
  MasterSecret m{};
  m[0] = 5;
  cache.put(id, m);
  EXPECT_EQ(cache.size(), 1u);  // lazy: still counted until a get() finds it
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(cache.get(id).has_value());
  EXPECT_EQ(cache.size(), 0u);  // collected by the failed lookup
  const SessionCacheStats st = cache.stats();
  EXPECT_EQ(st.expirations, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 0u);
  // A fresh put is alive again.
  cache.put(id, m);
  EXPECT_TRUE(cache.get(id).has_value());
}

TEST(SessionCacheTest, FullPutEvictsExpiredEntriesBeforeLiveOnes) {
  // Fill one shard, let half the entries TTL-lapse, then keep inserting:
  // every insert into the full shard must collect a TTL-dead entry (an
  // expiration) instead of displacing a live session (an eviction). A
  // capacity-displacement policy that ignores TTL would evict live
  // sessions while dead ones rot mid-list.
  SessionCache cache(SessionCacheConfig{
      .capacity = 8, .shards = 1, .ttl = std::chrono::milliseconds(200)});
  MasterSecret m{};
  SessionId ids[12] = {};
  for (int i = 0; i < 12; ++i) ids[i][0] = static_cast<std::uint8_t>(i + 1);
  for (int i = 0; i < 4; ++i) cache.put(ids[i], m);  // these will expire
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  for (int i = 4; i < 8; ++i) cache.put(ids[i], m);  // shard full: 4 dead + 4 live
  for (int i = 8; i < 12; ++i) cache.put(ids[i], m);  // 4 inserts into a full shard
  const SessionCacheStats st = cache.stats();
  EXPECT_EQ(st.expirations, 4u);  // the dead entries were the victims...
  EXPECT_EQ(st.evictions, 0u);    // ...and no live session was displaced
  // Every live session is still resumable.
  for (int i = 4; i < 12; ++i) {
    EXPECT_TRUE(cache.get(ids[i]).has_value()) << "id " << i;
  }
  EXPECT_EQ(cache.size(), 8u);
}

TEST(AlertNames, AllDistinct) {
  EXPECT_STREQ(to_string(Alert::kHandshakeFailure), "handshake_failure");
  EXPECT_STREQ(to_string(Alert::kDecryptError), "decrypt_error");
  EXPECT_STREQ(to_string(Alert::kBadFinished), "bad_finished");
  EXPECT_STREQ(to_string(Alert::kUnexpectedMessage), "unexpected_message");
}

TEST(Driver, CompletesAllHandshakes) {
  const rsa::Engine engine(rsa::test_key(512),
                           baseline::options_for(baseline::System::kPhiOpenSSL));
  DriverConfig cfg;
  cfg.num_handshakes = 16;
  cfg.num_threads = 1;
  const DriverReport r = run_handshakes(engine, cfg);
  EXPECT_EQ(r.completed, 16u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.resumed, 0u);  // ratio defaults to 0
  EXPECT_GT(r.handshakes_per_s, 0.0);
  EXPECT_EQ(r.latency_us.count, 16u);
}

TEST(Driver, MultithreadedCompletesAll) {
  const rsa::Engine engine(rsa::test_key(512),
                           baseline::options_for(baseline::System::kPhiOpenSSL));
  DriverConfig cfg;
  cfg.num_handshakes = 32;
  cfg.num_threads = 4;
  const DriverReport r = run_handshakes(engine, cfg);
  EXPECT_EQ(r.completed, 32u);
  EXPECT_EQ(r.failed, 0u);
}

TEST(Driver, BatchedPrivateOpsCompleteAll) {
  const rsa::Engine engine(rsa::test_key(512),
                           baseline::options_for(baseline::System::kPhiOpenSSL));
  DriverConfig cfg;
  cfg.num_handshakes = 16;
  cfg.num_threads = 4;
  cfg.batch_private_ops = true;
  cfg.batch_linger = std::chrono::microseconds(200);
  const DriverReport r = run_handshakes(engine, cfg);
  EXPECT_EQ(r.completed, 16u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GE(r.batches, 1u);  // the decryptions went through the service
  EXPECT_GT(r.batch_lane_occupancy, 0.0);
  EXPECT_EQ(r.latency_us.count, 16u);
  // All full handshakes: 16 cache inserts, no hit.
  EXPECT_EQ(r.cache_hits, 0u);
}

TEST(Driver, ReportsCacheCounters) {
  const rsa::Engine engine(rsa::test_key(512),
                           baseline::options_for(baseline::System::kPhiOpenSSL));
  DriverConfig cfg;
  cfg.num_handshakes = 24;
  cfg.num_threads = 2;
  cfg.resumption_ratio = 1.0;
  const DriverReport r = run_handshakes(engine, cfg);
  EXPECT_EQ(r.completed, 24u);
  // Every resumed handshake is a cache hit.
  EXPECT_EQ(r.cache_hits, r.resumed);
  EXPECT_GE(r.resumed, 24u - 2 * cfg.num_threads);
}

TEST(Driver, ResumptionRatioRespected) {
  const rsa::Engine engine(rsa::test_key(512),
                           baseline::options_for(baseline::System::kPhiOpenSSL));
  DriverConfig cfg;
  cfg.num_handshakes = 60;
  cfg.num_threads = 2;
  cfg.resumption_ratio = 1.0;  // resume whenever possible
  const DriverReport r = run_handshakes(engine, cfg);
  EXPECT_EQ(r.completed, 60u);
  EXPECT_EQ(r.failed, 0u);
  // Every handshake after each worker's first can resume.
  EXPECT_GE(r.resumed, 60u - 2 * cfg.num_threads);
  EXPECT_LT(r.resumed, 60u);

  cfg.resumption_ratio = 2.0;
  EXPECT_THROW(run_handshakes(engine, cfg), std::invalid_argument);
}

TEST(Driver, WorksForAllBaselineSystems) {
  for (const auto s : baseline::all_systems()) {
    const rsa::Engine engine =
        baseline::make_engine(s, rsa::test_key(512));
    DriverConfig cfg;
    cfg.num_handshakes = 4;
    const DriverReport r = run_handshakes(engine, cfg);
    EXPECT_EQ(r.completed, 4u) << baseline::name(s);
  }
}

TEST(Driver, RequiresPrivateKey) {
  const rsa::Engine pub_only(rsa::test_key(512).pub, rsa::EngineOptions{});
  EXPECT_THROW(run_handshakes(pub_only, DriverConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace phissl::ssl
