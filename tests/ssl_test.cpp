// Handshake state-machine tests: full happy path, the abbreviated
// (resumption) path, every failure path (wrong suite, wrong certificate,
// corrupted key exchange, bad Finished, out-of-order messages), the
// session cache, and the multithreaded driver.
#include <gtest/gtest.h>

#include "baseline/systems.hpp"
#include "rsa/key.hpp"
#include "ssl/driver.hpp"
#include "ssl/handshake.hpp"
#include "ssl/session_cache.hpp"
#include "util/random.hpp"

namespace phissl::ssl {
namespace {

class HandshakeTest : public ::testing::Test {
 protected:
  HandshakeTest()
      : server_engine_(rsa::test_key(1024), rsa::EngineOptions{}),
        client_engine_(rsa::test_key(1024).pub, rsa::EngineOptions{}) {}

  // Runs a full handshake to completion; returns the client's resumable
  // handle. Fails the test on any alert.
  ResumableSession full_handshake(SessionCache* cache = nullptr) {
    ServerHandshake server(server_engine_, rng_, cache);
    ClientHandshake client(client_engine_, rng_);
    const auto flight = server.on_client_hello(client.start());
    EXPECT_TRUE(flight.ok());
    EXPECT_FALSE(flight.value().hello.resumed);
    const auto kex = client.on_server_hello(flight.value().hello,
                                            *flight.value().certificate);
    EXPECT_TRUE(kex.ok());
    const auto fin =
        server.on_key_exchange(kex.value().first, kex.value().second);
    EXPECT_TRUE(fin.ok());
    EXPECT_TRUE(client.on_server_finished(fin.value()).ok());
    EXPECT_EQ(*client.master(), *server.master());
    EXPECT_FALSE(client.resumed());
    EXPECT_FALSE(server.resumed());
    return client.resumable();
  }

  rsa::Engine server_engine_;
  rsa::Engine client_engine_;
  util::Rng rng_{99};
};

TEST_F(HandshakeTest, FullHandshakeEstablishesSharedMaster) {
  full_handshake();
}

TEST_F(HandshakeTest, SessionKeysAgreeAcrossSides) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  const auto fin = server.on_key_exchange(kex.value().first, kex.value().second);
  ASSERT_TRUE(fin.ok());
  ASSERT_TRUE(client.on_server_finished(fin.value()).ok());
  const SessionKeys sk = server.session_keys();
  const SessionKeys ck = client.session_keys();
  EXPECT_EQ(sk.client_enc_key, ck.client_enc_key);
  EXPECT_EQ(sk.server_mac_key, ck.server_mac_key);
}

TEST_F(HandshakeTest, ResumptionSkipsRsaAndEstablishes) {
  SessionCache cache;
  const ResumableSession ticket = full_handshake(&cache);
  EXPECT_EQ(cache.size(), 1u);

  // Abbreviated handshake with a PUBLIC-ONLY check: no private op runs
  // (decrypt_pkcs1 is never called on this path).
  ServerHandshake server(server_engine_, rng_, &cache);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start(ticket));
  ASSERT_TRUE(flight.ok());
  EXPECT_TRUE(flight.value().hello.resumed);
  EXPECT_FALSE(flight.value().certificate.has_value());
  ASSERT_TRUE(flight.value().finished.has_value());

  const auto client_fin =
      client.on_resumed_hello(flight.value().hello, *flight.value().finished);
  ASSERT_TRUE(client_fin.ok());
  ASSERT_TRUE(server.on_resumed_client_finished(client_fin.value()).ok());

  EXPECT_TRUE(client.resumed());
  EXPECT_TRUE(server.resumed());
  EXPECT_EQ(*client.master(), *server.master());
  EXPECT_EQ(*client.master(), ticket.master);  // reused verbatim
  // Fresh randoms => fresh traffic keys even with the same master.
  const SessionKeys keys = client.session_keys();
  EXPECT_EQ(keys.client_enc_key, server.session_keys().client_enc_key);
}

TEST_F(HandshakeTest, ResumptionCanRepeat) {
  SessionCache cache;
  ResumableSession ticket = full_handshake(&cache);
  for (int i = 0; i < 3; ++i) {
    ServerHandshake server(server_engine_, rng_, &cache);
    ClientHandshake client(client_engine_, rng_);
    const auto flight = server.on_client_hello(client.start(ticket));
    ASSERT_TRUE(flight.ok());
    ASSERT_TRUE(flight.value().hello.resumed) << i;
    const auto cf =
        client.on_resumed_hello(flight.value().hello, *flight.value().finished);
    ASSERT_TRUE(cf.ok()) << i;
    ASSERT_TRUE(server.on_resumed_client_finished(cf.value()).ok()) << i;
    ticket = client.resumable();  // same id+master each time
  }
}

TEST_F(HandshakeTest, UnknownSessionIdFallsBackToFull) {
  SessionCache cache;
  ResumableSession bogus;
  rng_.fill_bytes(bogus.id.data(), bogus.id.size());
  rng_.fill_bytes(bogus.master.data(), bogus.master.size());

  ServerHandshake server(server_engine_, rng_, &cache);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start(bogus));
  ASSERT_TRUE(flight.ok());
  EXPECT_FALSE(flight.value().hello.resumed);  // cache miss -> full
  ASSERT_TRUE(flight.value().certificate.has_value());
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
}

TEST_F(HandshakeTest, ResumptionWithWrongMasterRejected) {
  SessionCache cache;
  ResumableSession ticket = full_handshake(&cache);
  ticket.master[0] ^= 1;  // client remembers a wrong master

  ServerHandshake server(server_engine_, rng_, &cache);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start(ticket));
  ASSERT_TRUE(flight.ok());
  ASSERT_TRUE(flight.value().hello.resumed);
  // The server's Finished is keyed by the true master: client must reject.
  const auto cf =
      client.on_resumed_hello(flight.value().hello, *flight.value().finished);
  ASSERT_FALSE(cf.ok());
  EXPECT_EQ(cf.alert(), Alert::kBadFinished);
}

TEST_F(HandshakeTest, RejectsUnknownCipherSuites) {
  ServerHandshake server(server_engine_, rng_);
  ClientHello ch;
  ch.cipher_suites = {0x0000, 0x1301};  // no RSA suite offered
  const auto flight = server.on_client_hello(ch);
  ASSERT_FALSE(flight.ok());
  EXPECT_EQ(flight.alert(), Alert::kHandshakeFailure);
}

TEST_F(HandshakeTest, ClientRejectsWrongCertificate) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  ASSERT_TRUE(flight.ok());
  Certificate bad_cert;
  bad_cert.server_key = rsa::test_key(2048).pub;  // different key
  const auto kex = client.on_server_hello(flight.value().hello, bad_cert);
  ASSERT_FALSE(kex.ok());
  EXPECT_EQ(kex.alert(), Alert::kHandshakeFailure);
}

TEST_F(HandshakeTest, ServerRejectsCorruptedKeyExchange) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  auto kex = client.on_server_hello(flight.value().hello,
                                    *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
  auto bad = kex.value().first;
  bad.encrypted_premaster[10] ^= 0x40;
  const auto fin = server.on_key_exchange(bad, kex.value().second);
  ASSERT_FALSE(fin.ok());
  EXPECT_TRUE(fin.alert() == Alert::kDecryptError ||
              fin.alert() == Alert::kBadFinished);
}

TEST_F(HandshakeTest, ServerRejectsBadClientFinished) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  auto kex = client.on_server_hello(flight.value().hello,
                                    *flight.value().certificate);
  ASSERT_TRUE(kex.ok());
  Finished bad_fin = kex.value().second;
  bad_fin.verify_data[0] ^= 1;
  const auto fin = server.on_key_exchange(kex.value().first, bad_fin);
  ASSERT_FALSE(fin.ok());
  EXPECT_EQ(fin.alert(), Alert::kBadFinished);
}

TEST_F(HandshakeTest, ClientRejectsBadServerFinished) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  const auto flight = server.on_client_hello(client.start());
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  auto fin = server.on_key_exchange(kex.value().first, kex.value().second);
  ASSERT_TRUE(fin.ok());
  Finished bad = fin.value();
  bad.verify_data[kVerifyDataSize - 1] ^= 0x80;
  const auto done = client.on_server_finished(bad);
  ASSERT_FALSE(done.ok());
  EXPECT_EQ(done.alert(), Alert::kBadFinished);
}

TEST_F(HandshakeTest, OutOfOrderMessagesRejected) {
  ServerHandshake server(server_engine_, rng_);
  ClientHandshake client(client_engine_, rng_);
  // KeyExchange before ClientHello.
  const auto early = server.on_key_exchange(ClientKeyExchange{}, Finished{});
  ASSERT_FALSE(early.ok());
  EXPECT_EQ(early.alert(), Alert::kUnexpectedMessage);
  // Resumed-finished on the full path.
  EXPECT_FALSE(server.on_resumed_client_finished(Finished{}).ok());
  // Hello twice.
  const auto flight = server.on_client_hello(client.start());
  ASSERT_TRUE(flight.ok());
  const auto again = server.on_client_hello(client.start());
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.alert(), Alert::kUnexpectedMessage);
  // Client: server hello before start is rejected.
  ClientHandshake fresh(client_engine_, rng_);
  const auto bad = fresh.on_server_hello(flight.value().hello,
                                         *flight.value().certificate);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.alert(), Alert::kUnexpectedMessage);
}

TEST_F(HandshakeTest, SessionsHaveDistinctMasters) {
  MasterSecret first{};
  for (int i = 0; i < 2; ++i) {
    ServerHandshake server(server_engine_, rng_);
    ClientHandshake client(client_engine_, rng_);
    const auto flight = server.on_client_hello(client.start());
    const auto kex = client.on_server_hello(flight.value().hello,
                                            *flight.value().certificate);
    const auto fin =
        server.on_key_exchange(kex.value().first, kex.value().second);
    ASSERT_TRUE(fin.ok());
    if (i == 0) {
      first = *server.master();
    } else {
      EXPECT_NE(*server.master(), first);
    }
  }
}

TEST(SessionCacheTest, PutGetEvict) {
  SessionCache cache(2);
  SessionId a{}, b{}, c{};
  a[0] = 1;
  b[0] = 2;
  c[0] = 3;
  MasterSecret m{};
  m[0] = 9;
  cache.put(a, m);
  cache.put(b, m);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get(a).has_value());
  cache.put(c, m);  // evicts the oldest (a)
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.get(a).has_value());
  EXPECT_TRUE(cache.get(b).has_value());
  EXPECT_TRUE(cache.get(c).has_value());
  // Re-put of an existing id is an update, not an insert.
  MasterSecret m2{};
  m2[0] = 7;
  cache.put(b, m2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ((*cache.get(b))[0], 7);
}

TEST(AlertNames, AllDistinct) {
  EXPECT_STREQ(to_string(Alert::kHandshakeFailure), "handshake_failure");
  EXPECT_STREQ(to_string(Alert::kDecryptError), "decrypt_error");
  EXPECT_STREQ(to_string(Alert::kBadFinished), "bad_finished");
  EXPECT_STREQ(to_string(Alert::kUnexpectedMessage), "unexpected_message");
}

TEST(Driver, CompletesAllHandshakes) {
  const rsa::Engine engine(rsa::test_key(512),
                           baseline::options_for(baseline::System::kPhiOpenSSL));
  DriverConfig cfg;
  cfg.num_handshakes = 16;
  cfg.num_threads = 1;
  const DriverReport r = run_handshakes(engine, cfg);
  EXPECT_EQ(r.completed, 16u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.resumed, 0u);  // ratio defaults to 0
  EXPECT_GT(r.handshakes_per_s, 0.0);
  EXPECT_EQ(r.latency_us.count, 16u);
}

TEST(Driver, MultithreadedCompletesAll) {
  const rsa::Engine engine(rsa::test_key(512),
                           baseline::options_for(baseline::System::kPhiOpenSSL));
  DriverConfig cfg;
  cfg.num_handshakes = 32;
  cfg.num_threads = 4;
  const DriverReport r = run_handshakes(engine, cfg);
  EXPECT_EQ(r.completed, 32u);
  EXPECT_EQ(r.failed, 0u);
}

TEST(Driver, ResumptionRatioRespected) {
  const rsa::Engine engine(rsa::test_key(512),
                           baseline::options_for(baseline::System::kPhiOpenSSL));
  DriverConfig cfg;
  cfg.num_handshakes = 60;
  cfg.num_threads = 2;
  cfg.resumption_ratio = 1.0;  // resume whenever possible
  const DriverReport r = run_handshakes(engine, cfg);
  EXPECT_EQ(r.completed, 60u);
  EXPECT_EQ(r.failed, 0u);
  // Every handshake after each worker's first can resume.
  EXPECT_GE(r.resumed, 60u - 2 * cfg.num_threads);
  EXPECT_LT(r.resumed, 60u);

  cfg.resumption_ratio = 2.0;
  EXPECT_THROW(run_handshakes(engine, cfg), std::invalid_argument);
}

TEST(Driver, WorksForAllBaselineSystems) {
  for (const auto s : baseline::all_systems()) {
    const rsa::Engine engine =
        baseline::make_engine(s, rsa::test_key(512));
    DriverConfig cfg;
    cfg.num_handshakes = 4;
    const DriverReport r = run_handshakes(engine, cfg);
    EXPECT_EQ(r.completed, 4u) << baseline::name(s);
  }
}

TEST(Driver, RequiresPrivateKey) {
  const rsa::Engine pub_only(rsa::test_key(512).pub, rsa::EngineOptions{});
  EXPECT_THROW(run_handshakes(pub_only, DriverConfig{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace phissl::ssl
