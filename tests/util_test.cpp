// Unit tests for src/util: PRNG determinism, hex codec, stats, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

#include "util/hex.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timing.hpp"

namespace phissl::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000003ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversSmallRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, FillBytesLengths) {
  Rng rng(3);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 64u}) {
    EXPECT_EQ(rng.bytes(n).size(), n);
  }
}

TEST(Rng, BytesLookUniformish) {
  Rng rng(11);
  auto v = rng.bytes(4096);
  std::vector<int> counts(256, 0);
  for (auto b : v) counts[b]++;
  // Each byte value expected ~16 times; allow a generous band.
  for (int c : counts) EXPECT_LT(c, 64);
}

TEST(Hex, RoundTrip) {
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(hex_encode(data), "0001abff10");
  EXPECT_EQ(hex_decode("0001abff10"), data);
  EXPECT_EQ(hex_decode("0x0001ABFF10"), data);
}

TEST(Hex, OddLengthGetsLeadingNibble) {
  const auto v = hex_decode("abc");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 0x0a);
  EXPECT_EQ(v[1], 0xbc);
}

TEST(Hex, RejectsBadDigit) {
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);
  EXPECT_THROW(hex_decode("12g4"), std::invalid_argument);
}

TEST(Hex, EmptyInput) {
  EXPECT_TRUE(hex_decode("").empty());
  EXPECT_EQ(hex_encode(std::vector<std::uint8_t>{}), "");
}

TEST(Stats, BasicSummary) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
  EXPECT_DOUBLE_EQ(s.p95, 5.0);
  EXPECT_DOUBLE_EQ(s.p99, 5.0);
}

TEST(Stats, PercentilesNearestRank) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  const Summary s = summarize(std::move(samples));
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
}

TEST(Stats, EvenCountMedian) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.0);
  EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(Stats, NonFiniteSamplesAreDropped) {
  // A NaN or infinity in the sample set (a poisoned timer, a division by
  // a zero duration) must not leak into any aggregate: summarize drops
  // non-finite values and reports only the finite subset.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const Summary s = summarize({2.0, nan, 4.0, inf, 6.0, -inf});
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 4.0);
  EXPECT_TRUE(std::isfinite(s.stddev));
  EXPECT_DOUBLE_EQ(s.p99, 6.0);

  // All-non-finite input behaves exactly like an empty sample.
  const Summary none = summarize({nan, inf, -inf});
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.mean, 0.0);
  EXPECT_DOUBLE_EQ(none.p99, 0.0);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 100; ++i) {
    futs.push_back(pool.submit([&counter] { counter++; }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksAreContiguousAndDisjoint) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_for(103, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(lo, hi);
  });
  ASSERT_LE(ranges.size(), 4u);
  std::sort(ranges.begin(), ranges.end());
  std::size_t expect = 0;
  for (const auto& [lo, hi] : ranges) {
    EXPECT_EQ(lo, expect);
    EXPECT_LT(lo, hi);
    expect = hi;
  }
  EXPECT_EQ(expect, 103u);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> c{0};
  pool.submit([&c] { c = 1; }).get();
  EXPECT_EQ(c.load(), 1);
}

TEST(Timing, StopwatchMonotone) {
  Stopwatch sw;
  const auto a = sw.elapsed_ns();
  const auto b = sw.elapsed_ns();
  EXPECT_LE(a, b);
  sw.reset();
  EXPECT_GE(sw.elapsed_s(), 0.0);
}

}  // namespace
}  // namespace phissl::util
