// SHA-256 against FIPS 180-4 / NIST CAVP known-answer vectors.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "util/hex.hpp"
#include "util/sha256.hpp"

namespace phissl::util {
namespace {

std::string hash_hex(std::string_view msg) {
  const auto d = Sha256::hash(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
  return hex_encode(d.data(), d.size());
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hash_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hash_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hash_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55 bytes: padding fits in one block; 56 bytes: forces a second block;
  // 64 bytes: exactly one full block of data.
  EXPECT_EQ(hash_hex(std::string(55, 'a')),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(hash_hex(std::string(56, 'a')),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
  EXPECT_EQ(hash_hex(std::string(64, 'a')),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(chunk.data()), chunk.size()));
  }
  const auto d = h.finish();
  EXPECT_EQ(hex_encode(d.data(), d.size()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly and with "
      "increasing enthusiasm, until the message spans several blocks.";
  const auto whole = hash_hex(msg);
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()), split));
    h.update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(msg.data()) + split,
        msg.size() - split));
    const auto d = h.finish();
    EXPECT_EQ(hex_encode(d.data(), d.size()), whole) << "split=" << split;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 h;
  const std::string a = "first";
  h.update(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(a.data()), a.size()));
  (void)h.finish();
  h.reset();
  const auto d = h.finish();  // hash of empty after reset
  EXPECT_EQ(hex_encode(d.data(), d.size()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

}  // namespace
}  // namespace phissl::util
