// Unit tests for the trace-driven replay engine (src/phisim/replay.hpp)
// and autotuner (src/phisim/autotune.hpp): scheduler-model behavior on
// hand-built traces (threshold dispatch, linger flush behind a busy slot,
// forced-full, admission shedding, the event-frontend resume stage),
// autotune determinism (the golden property: same trace + grid + cost +
// seed -> identical recommendation), tuned-config JSON round-trip, and the
// ssl::apply_tuned_config mapping onto live service configs.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/workload.hpp"
#include "phisim/autotune.hpp"
#include "phisim/replay.hpp"
#include "ssl/driver.hpp"
#include "ssl/tuned_config.hpp"

namespace phissl::phisim {
namespace {

obs::WorkloadEvent arrival(std::uint64_t at_us) {
  obs::WorkloadEvent ev;
  ev.arrival_ns = at_us * 1000;
  ev.op = obs::WorkloadOp::kSign;
  ev.key_bits = 1024;
  return ev;
}

std::vector<obs::WorkloadEvent> burst(std::uint64_t start_us, std::size_t n,
                                      std::uint64_t step_us = 1) {
  std::vector<obs::WorkloadEvent> evs;
  for (std::size_t i = 0; i < n; ++i) {
    evs.push_back(arrival(start_us + i * step_us));
  }
  return evs;
}

ReplayCost cost_us(double batch, double slack = 0.0) {
  ReplayCost c = ReplayCost::from_measured(batch);
  c.linger_slack_us = slack;
  return c;
}

// Deterministic pseudo-Poisson trace (LCG, no std RNG): the shared input
// for the golden tests.
std::vector<obs::WorkloadEvent> synthetic_trace(std::size_t n,
                                                std::uint64_t mean_gap_us) {
  std::vector<obs::WorkloadEvent> evs;
  std::uint64_t state = 0x2545F4914F6CDD1DULL, t = 0;
  for (std::size_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    t += (state >> 33) % (2 * mean_gap_us + 1);
    evs.push_back(arrival(t));
  }
  return evs;
}

TEST(Replay, FullBurstDispatchesAtThresholdWithZeroWait) {
  const auto evs = burst(100, 16, 0);  // 16 simultaneous arrivals
  const ReplayResult r = replay_workload(evs, ReplayConfig{}, cost_us(500));
  EXPECT_EQ(r.offered, 16u);
  EXPECT_EQ(r.admitted, 16u);
  EXPECT_EQ(r.batches, 1u);
  EXPECT_EQ(r.full_batches, 1u);
  EXPECT_EQ(r.padded_lanes, 0u);
  EXPECT_DOUBLE_EQ(r.occupancy, 1.0);
  EXPECT_DOUBLE_EQ(r.wait_us.max, 0.0);
  // Sojourn = wait + batch service.
  EXPECT_DOUBLE_EQ(r.sojourn_us.max, 500.0);
  EXPECT_DOUBLE_EQ(r.makespan_us, 500.0);
}

TEST(Replay, LingerFlushesPartialAtDeadlinePlusSlack) {
  // One op at t=0, the next far beyond the linger deadline: the first is
  // linger-flushed at deadline + slack, the second rides the final drain.
  std::vector<obs::WorkloadEvent> evs = {arrival(0), arrival(50'000)};
  ReplayConfig cfg;
  cfg.linger_us = 500.0;
  const ReplayResult r = replay_workload(evs, cfg, cost_us(100, 150));
  EXPECT_EQ(r.batches, 2u);
  EXPECT_EQ(r.full_batches, 0u);
  EXPECT_EQ(r.padded_lanes, 30u);
  EXPECT_DOUBLE_EQ(r.wait_us.max, 650.0);  // linger + slack
  EXPECT_DOUBLE_EQ(r.wait_us.min, 0.0);    // the drained op
}

TEST(Replay, LingerWaitsForBusySlot) {
  // Batch 1: full 16 at t=0, busy until 1000. A lone op at t=100 expires
  // its 500us linger at 600 but must wait for the slot: flushed at 1000.
  auto evs = burst(0, 16, 0);
  evs.push_back(arrival(100));
  evs.push_back(arrival(5'000));  // advances time past every flush
  ReplayConfig cfg;
  cfg.linger_us = 500.0;
  const ReplayResult r = replay_workload(evs, cfg, cost_us(1000, 0));
  EXPECT_EQ(r.batches, 3u);
  // Waits: 16 zeros, then the blocked op (1000 - 100), then the drain op.
  EXPECT_DOUBLE_EQ(r.wait_us.max, 900.0);
}

TEST(Replay, FullBatchesOnlyNeverLingerFlushes) {
  // 8 ops spread over 10ms: with full_batches_only nothing dispatches
  // until the stop() drain, which stamps waits at the last arrival.
  const auto evs = burst(0, 8, 1250);
  ReplayConfig cfg;
  cfg.full_batches_only = true;
  const ReplayResult r = replay_workload(evs, cfg, cost_us(100));
  EXPECT_EQ(r.batches, 1u);
  EXPECT_EQ(r.full_batches, 0u);
  EXPECT_DOUBLE_EQ(r.wait_us.max, 7.0 * 1250.0);  // first op waits to drain
}

TEST(Replay, MaxBatchLanesLowersTheThreshold) {
  const auto evs = burst(0, 16, 0);
  ReplayConfig cfg;
  cfg.max_batch_lanes = 8;
  const ReplayResult r = replay_workload(evs, cfg, cost_us(500));
  EXPECT_EQ(r.batches, 2u);  // two 8-lane dispatches
  EXPECT_EQ(r.full_batches, 0u);
  EXPECT_DOUBLE_EQ(r.occupancy, 0.5);
}

TEST(Replay, AdmissionShedsWhenPredictedWaitExceedsBound) {
  // 64 simultaneous arrivals, 1000us batches: the 17th op onward sees a
  // growing backlog. With the bound at one batch + linger, everything
  // past the first two batches' worth of depth is shed.
  const auto evs = burst(0, 64, 0);
  ReplayConfig cfg;
  cfg.linger_us = 100.0;
  cfg.admission_max_wait_us = 1200.0;  // 1 batch (1000) + linger hint (100)
  const ReplayResult r = replay_workload(evs, cfg, cost_us(1000));
  EXPECT_EQ(r.offered, 64u);
  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.admitted + r.shed, 64u);
  EXPECT_GT(r.shed_fraction, 0.0);
  // Depth 16 predicts ceil(17/16)*1000 + 100 = 2100 > 1200: only the
  // first 16 are admitted.
  EXPECT_EQ(r.admitted, 16u);
}

TEST(Replay, ResumedEventsAreSkippedAndShedReoffered) {
  auto evs = burst(0, 16, 0);
  evs[3].resumed = true;  // this handshake avoided its private op
  evs[7].shed = true;     // shed by the RECORDED config; re-offered here
  const ReplayResult r = replay_workload(evs, ReplayConfig{}, cost_us(500));
  EXPECT_EQ(r.offered, 15u);  // 16 minus the resumed one
  EXPECT_EQ(r.admitted, 15u); // default config admits everything
  EXPECT_EQ(r.shed, 0u);
}

TEST(Replay, EventWorkersModelResumeStage) {
  const auto evs = burst(0, 16, 0);
  ReplayConfig one;
  one.event_workers = 1;
  ReplayConfig four;
  four.event_workers = 4;
  const ReplayResult r1 = replay_workload(evs, one, cost_us(500));
  const ReplayResult r4 = replay_workload(evs, four, cost_us(500));
  // 16 resumes at 2us each on one worker: the last waits 30us; on four
  // workers the tail shrinks by 4x.
  EXPECT_DOUBLE_EQ(r1.resume_wait_us.max, 30.0);
  EXPECT_DOUBLE_EQ(r4.resume_wait_us.max, 6.0);
  // Threaded frontend: no resume stage at all.
  const ReplayResult r0 =
      replay_workload(evs, ReplayConfig{}, cost_us(500));
  EXPECT_EQ(r0.resume_wait_us.count, 0u);
}

TEST(Replay, DeterministicAcrossRuns) {
  const auto evs = synthetic_trace(500, 40);
  ReplayConfig cfg;
  cfg.linger_us = 200.0;
  const ReplayResult a = replay_workload(evs, cfg, cost_us(700, 150));
  const ReplayResult b = replay_workload(evs, cfg, cost_us(700, 150));
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.admitted, b.admitted);
  EXPECT_DOUBLE_EQ(a.wait_us.p99, b.wait_us.p99);
  EXPECT_DOUBLE_EQ(a.sojourn_us.p99, b.sojourn_us.p99);
  EXPECT_DOUBLE_EQ(a.occupancy, b.occupancy);
}

// --- autotune ---------------------------------------------------------------

TEST(Autotune, GoldenSameTraceSameSeedSameRecommendation) {
  const auto evs = synthetic_trace(800, 30);
  const ReplayCost cost = cost_us(900, 150);
  const AutotuneReport a = autotune(evs, cost, AutotuneGrid{}, 42);
  const AutotuneReport b = autotune(evs, cost, AutotuneGrid{}, 42);
  EXPECT_EQ(a.best, b.best);  // full TunedConfig equality, predictions too
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.candidates[i].score, b.candidates[i].score);
  }
  // The seed is a stamp, not an RNG: a different seed changes nothing but
  // the stamp.
  const AutotuneReport c = autotune(evs, cost, AutotuneGrid{}, 7);
  EXPECT_EQ(c.best.seed, 7u);
  TunedConfig restamped = c.best;
  restamped.seed = a.best.seed;
  EXPECT_EQ(restamped, a.best);
}

TEST(Autotune, WinnerHasMinimalScoreAndGridWide) {
  const auto evs = synthetic_trace(400, 25);
  const AutotuneGrid grid;
  const AutotuneReport report = autotune(evs, cost_us(800, 150), grid, 1);
  const std::size_t cells = grid.linger_us.size() *
                            grid.max_batch_lanes.size() *
                            grid.dispatch_slots.size() *
                            grid.admission_max_wait_us.size() *
                            grid.event_workers.size();
  EXPECT_EQ(report.candidates.size(), cells);
  for (const AutotuneCandidate& cand : report.candidates) {
    EXPECT_LE(report.best.score, cand.score);
  }
}

TEST(Autotune, EmptyGridDimensionThrows) {
  AutotuneGrid grid;
  grid.linger_us.clear();
  EXPECT_THROW(autotune(synthetic_trace(10, 10), cost_us(100), grid, 1),
               std::invalid_argument);
}

TEST(TunedConfigJson, RoundTrip) {
  TunedConfig cfg;
  cfg.linger_us = 350.0;
  cfg.max_batch_lanes = 12;
  cfg.dispatch_threads = 2;
  cfg.event_workers = 4;
  cfg.admission_max_wait_us = 15000.0;
  cfg.cache_shards = 64;
  cfg.seed = 99;
  cfg.predicted_p99_wait_us = 812.5;
  cfg.predicted_p99_latency_us = 1712.5;
  cfg.predicted_occupancy = 0.9375;
  cfg.predicted_shed_fraction = 0.0625;
  cfg.score = 1234.5;

  std::stringstream ss;
  write_tuned_config_json(ss, cfg);
  const TunedConfig back = parse_tuned_config_json(ss);
  EXPECT_EQ(back, cfg);
}

TEST(TunedConfigJson, ParserRejectsBadDocuments) {
  const auto parse = [](const std::string& doc) {
    std::istringstream is(doc);
    return parse_tuned_config_json(is);
  };
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{\"schema\":\"something-else\",\"version\":1}"),
               std::runtime_error);
  // Right schema, wrong version.
  std::stringstream good;
  write_tuned_config_json(good, TunedConfig{});
  std::string doc = good.str();
  const std::size_t v = doc.find("\"version\": 1");
  ASSERT_NE(v, std::string::npos);
  doc.replace(v, 12, "\"version\": 9");
  EXPECT_THROW(parse(doc), std::runtime_error);
  // Out-of-range lanes.
  std::stringstream bad_lanes;
  TunedConfig lanes_cfg;
  lanes_cfg.max_batch_lanes = 17;
  write_tuned_config_json(bad_lanes, lanes_cfg);
  EXPECT_THROW(parse(bad_lanes.str()), std::runtime_error);
}

TEST(ApplyTunedConfig, MapsOntoServiceAndDriverConfigs) {
  TunedConfig tuned;
  tuned.linger_us = 250.0;
  tuned.max_batch_lanes = 8;
  tuned.dispatch_threads = 2;
  tuned.event_workers = 4;
  tuned.admission_max_wait_us = 9000.0;
  tuned.cache_shards = 32;

  service::SignServiceConfig svc;
  ssl::apply_tuned_config(tuned, svc);
  EXPECT_EQ(svc.max_linger, std::chrono::microseconds(250));
  EXPECT_EQ(svc.max_batch_lanes, 8u);
  EXPECT_EQ(svc.dispatch_threads, 2u);

  ssl::BatchDecryptConfig bd;
  ssl::apply_tuned_config(tuned, bd);
  EXPECT_EQ(bd.max_linger, std::chrono::microseconds(250));
  EXPECT_EQ(bd.max_batch_lanes, 8u);
  EXPECT_EQ(bd.dispatch_threads, 2u);

  ssl::DriverConfig drv;
  ssl::apply_tuned_config(tuned, drv);
  EXPECT_EQ(drv.batch_linger, std::chrono::microseconds(250));
  EXPECT_EQ(drv.batch_max_lanes, 8u);
  EXPECT_EQ(drv.batch_dispatch_threads, 2u);
  EXPECT_EQ(drv.event_workers, 4u);
  EXPECT_EQ(drv.admission.max_predicted_wait,
            std::chrono::microseconds(9000));
  EXPECT_EQ(drv.admission.linger_hint, std::chrono::microseconds(250));
  EXPECT_EQ(drv.cache_shards, 32u);

  // Admission off: the linger hint keeps its default.
  TunedConfig no_adm = tuned;
  no_adm.admission_max_wait_us = 0.0;
  no_adm.event_workers = 0;
  ssl::DriverConfig drv2;
  const auto default_hint = drv2.admission.linger_hint;
  const auto default_workers = drv2.event_workers;
  ssl::apply_tuned_config(no_adm, drv2);
  EXPECT_EQ(drv2.admission.max_predicted_wait, std::chrono::microseconds(0));
  EXPECT_EQ(drv2.admission.linger_hint, default_hint);
  EXPECT_EQ(drv2.event_workers, default_workers);
}

}  // namespace
}  // namespace phissl::phisim
