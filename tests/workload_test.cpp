// Unit tests for the workload trace recorder (src/obs/workload.hpp):
// JSONL round-trip losslessness, the global recorder's record -> export ->
// load pipeline, ring wraparound (oldest events overwritten, drop totals
// and the registry drop counter advance), the recording toggle, and the
// loader's line-numbered rejection of malformed documents.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/workload.hpp"

namespace phissl::obs {
namespace {

WorkloadEvent make_event(std::uint64_t arrival, WorkloadOp op,
                         std::uint8_t lanes) {
  WorkloadEvent ev;
  ev.arrival_ns = arrival;
  ev.queue_wait_ns = arrival / 2;
  ev.batch_id = arrival % 7;
  ev.key_bits = 1024;
  ev.op = op;
  ev.lanes_filled = lanes;
  return ev;
}

TEST(WorkloadOpNames, RoundTrip) {
  for (WorkloadOp op : {WorkloadOp::kSign, WorkloadOp::kPrivateOp,
                        WorkloadOp::kDheSign}) {
    const auto back = workload_op_from_string(to_string(op));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, op);
  }
  EXPECT_FALSE(workload_op_from_string("verify").has_value());
  EXPECT_FALSE(workload_op_from_string("").has_value());
}

TEST(WorkloadJsonl, WriteLoadIsLossless) {
  std::vector<WorkloadEvent> events;
  events.push_back(make_event(0, WorkloadOp::kSign, 16));
  events.push_back(make_event(1'000'000, WorkloadOp::kPrivateOp, 1));
  events.push_back(make_event(2'500'000, WorkloadOp::kDheSign, 7));
  WorkloadEvent shed;
  shed.arrival_ns = 3'000'000;
  shed.shed = true;
  events.push_back(shed);
  WorkloadEvent resumed;
  resumed.arrival_ns = 4'000'000;
  resumed.resumed = true;
  events.push_back(resumed);
  WorkloadEvent extremes;
  extremes.arrival_ns = UINT64_MAX;
  extremes.queue_wait_ns = UINT64_MAX;
  extremes.batch_id = UINT64_MAX;
  extremes.key_bits = UINT32_MAX;
  extremes.lanes_filled = 255;
  events.push_back(extremes);

  std::stringstream ss;
  write_workload_jsonl(ss, events);
  const std::vector<WorkloadEvent> loaded = load_workload_jsonl(ss);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(loaded[i], events[i]) << "event " << i;
  }
}

TEST(WorkloadRecorder, RecordExportLoadRoundTrip) {
  WorkloadRecorder& rec = WorkloadRecorder::global();
  rec.set_recording(true);
  rec.clear();

  std::vector<WorkloadEvent> sent;
  for (std::uint64_t i = 0; i < 100; ++i) {
    WorkloadEvent ev = make_event(i * 1000, WorkloadOp::kSign,
                                  static_cast<std::uint8_t>(i % 16 + 1));
    ev.batch_id = rec.next_batch_id();
    EXPECT_NE(ev.batch_id, 0u);
    rec.record(ev);
    sent.push_back(ev);
  }
  EXPECT_GE(rec.recorded_total(), 100u);

  std::stringstream ss;
  rec.export_jsonl(ss);
  const std::vector<WorkloadEvent> loaded = load_workload_jsonl(ss);
  ASSERT_EQ(loaded.size(), sent.size());
  // drain() sorts by arrival_ns; sent is already in arrival order.
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(loaded[i], sent[i]) << "event " << i;
  }
  rec.set_recording(false);
  rec.clear();
}

TEST(WorkloadRecorder, RecordingToggle) {
  WorkloadRecorder& rec = WorkloadRecorder::global();
  rec.set_recording(false);
  EXPECT_FALSE(rec.enabled());
  rec.set_recording(true);
  EXPECT_TRUE(rec.enabled());
  rec.set_recording(false);
  EXPECT_FALSE(rec.enabled());
}

TEST(WorkloadRecorder, RelNsSaturatesAtEpoch) {
  WorkloadRecorder& rec = WorkloadRecorder::global();
  EXPECT_EQ(rec.rel_ns(0), 0u);  // long before the epoch
  const std::uint64_t now = rec.now_rel_ns();
  // now_rel_ns is measured against the same epoch rel_ns subtracts.
  EXPECT_GE(rec.now_rel_ns(), now);
}

TEST(WorkloadRecorder, RingWraparoundKeepsNewestAndCountsDrops) {
  WorkloadRecorder& rec = WorkloadRecorder::global();
  rec.set_recording(true);
  rec.clear();
  Counter& drop_counter = Registry::global().counter(
      "phissl_workload_dropped_total", "");
  const std::uint64_t counter_before = drop_counter.value();
  const std::uint64_t dropped_before = rec.dropped_total();

  const std::uint64_t extra = 123;
  const std::uint64_t total = WorkloadRecorder::kRingCapacity + extra;
  for (std::uint64_t i = 0; i < total; ++i) {
    rec.record(make_event(i, WorkloadOp::kSign, 1));
  }

  const std::vector<WorkloadEvent> kept = rec.drain();
  ASSERT_EQ(kept.size(), WorkloadRecorder::kRingCapacity);
  // Oldest `extra` events were overwritten: the survivors are exactly
  // [extra, total), still sorted by arrival.
  EXPECT_EQ(kept.front().arrival_ns, extra);
  EXPECT_EQ(kept.back().arrival_ns, total - 1);
  for (std::size_t i = 1; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].arrival_ns, kept[i - 1].arrival_ns + 1);
  }

  EXPECT_EQ(rec.dropped_total() - dropped_before, extra);
  // The registry counter mirrors the drop total (and being monotone, it
  // survives clear()).
  EXPECT_EQ(drop_counter.value() - counter_before, extra);

  rec.set_recording(false);
  rec.clear();
  EXPECT_TRUE(rec.drain().empty());
}

TEST(WorkloadJsonl, LoaderRejectsMalformedDocuments) {
  const auto load = [](const std::string& doc) {
    std::istringstream is(doc);
    return load_workload_jsonl(is);
  };
  const std::string header =
      "{\"schema\":\"phissl-workload-trace\",\"version\":1,\"events\":1}\n";
  const std::string good_line =
      "{\"arrival_ns\":1,\"op\":\"sign\",\"key_bits\":1024,"
      "\"queue_wait_ns\":0,\"batch_id\":0,\"lanes_filled\":0,"
      "\"shed\":0,\"resumed\":0}\n";

  EXPECT_NO_THROW(load(header + good_line));
  EXPECT_THROW(load(""), std::runtime_error);
  EXPECT_THROW(load("not json\n"), std::runtime_error);
  // Wrong schema name.
  EXPECT_THROW(
      load("{\"schema\":\"phissl-trace\",\"version\":1,\"events\":0}\n"),
      std::runtime_error);
  // Unsupported version.
  EXPECT_THROW(
      load("{\"schema\":\"phissl-workload-trace\",\"version\":99,"
           "\"events\":0}\n"),
      std::runtime_error);
  // Unknown op name.
  EXPECT_THROW(load(header + "{\"arrival_ns\":1,\"op\":\"verify\","
                             "\"key_bits\":1024,\"queue_wait_ns\":0,"
                             "\"batch_id\":0,\"lanes_filled\":0,"
                             "\"shed\":0,\"resumed\":0}\n"),
               std::runtime_error);
  // Missing required field (no arrival_ns).
  EXPECT_THROW(load(header + "{\"op\":\"sign\",\"key_bits\":1024,"
                             "\"queue_wait_ns\":0,\"batch_id\":0,"
                             "\"lanes_filled\":0,\"shed\":0,"
                             "\"resumed\":0}\n"),
               std::runtime_error);
  // lanes_filled out of the uint8 range.
  EXPECT_THROW(load(header + "{\"arrival_ns\":1,\"op\":\"sign\","
                             "\"key_bits\":1024,\"queue_wait_ns\":0,"
                             "\"batch_id\":0,\"lanes_filled\":256,"
                             "\"shed\":0,\"resumed\":0}\n"),
               std::runtime_error);
}

TEST(WorkloadJsonl, LoaderAcceptsFlagSpellings) {
  const std::string header =
      "{\"schema\":\"phissl-workload-trace\",\"version\":1,\"events\":1}\n";
  std::istringstream is(header +
                        "{\"arrival_ns\":5,\"op\":\"dhe_sign\","
                        "\"key_bits\":2048,\"queue_wait_ns\":9,"
                        "\"batch_id\":3,\"lanes_filled\":12,"
                        "\"shed\":true,\"resumed\":false}\n");
  const std::vector<WorkloadEvent> loaded = load_workload_jsonl(is);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded[0].shed);
  EXPECT_FALSE(loaded[0].resumed);
  EXPECT_EQ(loaded[0].op, WorkloadOp::kDheSign);
  EXPECT_EQ(loaded[0].lanes_filled, 12);
}

}  // namespace
}  // namespace phissl::obs
