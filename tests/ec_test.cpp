// NIST P-256 tests: known scalar multiples (independently computed),
// group laws, ECDH agreement, ECDSA round trips and rejection paths.
#include <gtest/gtest.h>

#include <string_view>

#include "ec/p256.hpp"
#include "util/random.hpp"

namespace phissl::ec {
namespace {

using bigint::BigInt;

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

class P256Test : public ::testing::Test {
 protected:
  P256 curve_;
  util::Rng rng_{2718};
};

TEST_F(P256Test, GeneratorOnCurve) {
  EXPECT_TRUE(curve_.on_curve(curve_.generator()));
  EXPECT_TRUE(curve_.on_curve(Point::at_infinity()));
  Point off = curve_.generator();
  off.y += BigInt{1};
  EXPECT_FALSE(curve_.on_curve(off));
}

TEST_F(P256Test, KnownScalarMultiples) {
  // Independently computed reference multiples of G.
  const struct {
    std::int64_t k;
    const char* x;
    const char* y;
  } vectors[] = {
      {2, "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
       "7775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"},
      {3, "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c",
       "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032"},
      {5, "51590b7a515140d2d784c85608668fdfef8c82fd1f5be52421554a0dc3d033ed",
       "e0c17da8904a727d8ae1bf36bf8a79260d012f00d4d80888d1d0bb44fda16da4"},
  };
  for (const auto& v : vectors) {
    const Point got = curve_.mul_base(BigInt{v.k});
    EXPECT_EQ(got.x, BigInt::from_hex(v.x)) << v.k;
    EXPECT_EQ(got.y, BigInt::from_hex(v.y)) << v.k;
    EXPECT_TRUE(curve_.on_curve(got));
  }
  // Large scalar.
  const Point big = curve_.mul_base(BigInt::from_u64(112233445566778899ULL));
  EXPECT_EQ(big.x,
            BigInt::from_hex("339150844ec15234807fe862a86be779"
                             "77dbfb3ae3d96f4c22795513aeaab82f"));
}

TEST_F(P256Test, GroupLaws) {
  const Point g = curve_.generator();
  // 2G = G + G, computed two ways.
  EXPECT_EQ(curve_.dbl(g), curve_.add(g, g));
  // 3G = 2G + G = G + 2G.
  const Point g2 = curve_.dbl(g);
  EXPECT_EQ(curve_.add(g2, g), curve_.add(g, g2));
  // G + O = G.
  EXPECT_EQ(curve_.add(g, Point::at_infinity()), g);
  // G + (-G) = O.
  Point neg = g;
  neg.y = (curve_.p() - g.y);
  EXPECT_TRUE(curve_.add(g, neg).is_infinity());
  // n*G = O (generator order).
  EXPECT_TRUE(curve_.mul(curve_.n(), g).is_infinity());
  // 0*G = O.
  EXPECT_TRUE(curve_.mul(BigInt{}, g).is_infinity());
}

TEST_F(P256Test, ScalarMulDistributes) {
  // (a+b)G == aG + bG for random scalars.
  for (int i = 0; i < 3; ++i) {
    const BigInt a = BigInt::random_below(curve_.n(), rng_);
    const BigInt b = BigInt::random_below(curve_.n(), rng_);
    const Point lhs = curve_.mul_base((a + b).mod(curve_.n()));
    const Point rhs = curve_.add(curve_.mul_base(a), curve_.mul_base(b));
    EXPECT_EQ(lhs, rhs) << i;
  }
}

TEST_F(P256Test, EcdhAgreementAndKnownVector) {
  const EcKeyPair alice = ecdh_generate(curve_, rng_);
  const EcKeyPair bob = ecdh_generate(curve_, rng_);
  EXPECT_EQ(ecdh_shared(curve_, alice.d, bob.q),
            ecdh_shared(curve_, bob.d, alice.q));

  // Independently computed pair: d1*G and d1*(d2*G) x-coordinate.
  const BigInt d1 = BigInt::from_hex(
      "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721");
  const Point q1 = curve_.mul_base(d1);
  EXPECT_EQ(q1.x,
            BigInt::from_hex("60fed4ba255a9d31c961eb74c6356d68"
                             "c049b8923b61fa6ce669622e60f29fb6"));
  const BigInt d2 =
      BigInt::from_hex("0123456789abcdef0123456789abcdef"
                       "0123456789abcdef0123456789abcdef")
          .mod(curve_.n());
  const Point q2 = curve_.mul_base(d2);
  EXPECT_EQ(ecdh_shared(curve_, d1, q2),
            BigInt::from_hex("8c339726b1d968756182352fc1501810"
                             "9527f618c7ee1de136728624edd2afe3"));
}

TEST_F(P256Test, EcdhRejectsBadPeerPoints) {
  const EcKeyPair kp = ecdh_generate(curve_, rng_);
  EXPECT_THROW(ecdh_shared(curve_, kp.d, Point::at_infinity()),
               std::invalid_argument);
  Point off = curve_.generator();
  off.x += BigInt{1};
  EXPECT_THROW(ecdh_shared(curve_, kp.d, off), std::invalid_argument);
}

TEST_F(P256Test, EcdsaSignVerifyRoundTrip) {
  const EcKeyPair kp = ecdh_generate(curve_, rng_);
  const auto sig = ecdsa_sign(curve_, bytes_of("sample"), kp.d, rng_);
  EXPECT_TRUE(ecdsa_verify(curve_, bytes_of("sample"), sig, kp.q));
  EXPECT_FALSE(ecdsa_verify(curve_, bytes_of("samplf"), sig, kp.q));
}

TEST_F(P256Test, EcdsaRejectsTamperingAndBadInputs) {
  const EcKeyPair kp = ecdh_generate(curve_, rng_);
  const auto sig = ecdsa_sign(curve_, bytes_of("msg"), kp.d, rng_);
  EcdsaSignature bad = sig;
  bad.r += BigInt{1};
  EXPECT_FALSE(ecdsa_verify(curve_, bytes_of("msg"), bad, kp.q));
  bad = sig;
  bad.s = BigInt{};
  EXPECT_FALSE(ecdsa_verify(curve_, bytes_of("msg"), bad, kp.q));
  bad = sig;
  bad.r = curve_.n();
  EXPECT_FALSE(ecdsa_verify(curve_, bytes_of("msg"), bad, kp.q));
  // Wrong key.
  const EcKeyPair other = ecdh_generate(curve_, rng_);
  EXPECT_FALSE(ecdsa_verify(curve_, bytes_of("msg"), sig, other.q));
  // Off-curve public key.
  Point off = kp.q;
  off.y += BigInt{1};
  EXPECT_FALSE(ecdsa_verify(curve_, bytes_of("msg"), sig, off));
}

TEST_F(P256Test, EcdsaSignaturesRandomized) {
  const EcKeyPair kp = ecdh_generate(curve_, rng_);
  const auto s1 = ecdsa_sign(curve_, bytes_of("m"), kp.d, rng_);
  const auto s2 = ecdsa_sign(curve_, bytes_of("m"), kp.d, rng_);
  EXPECT_NE(s1.r, s2.r);
  EXPECT_TRUE(ecdsa_verify(curve_, bytes_of("m"), s1, kp.q));
  EXPECT_TRUE(ecdsa_verify(curve_, bytes_of("m"), s2, kp.q));
}

}  // namespace
}  // namespace phissl::ec
