// Unit + differential tests for the Montgomery contexts.
//
// Every context (32-bit scalar, 64-bit scalar, vectorized redundant-radix,
// radix-52 truncated-REDC) is checked against the BigInt division-based
// oracle, and against each other, on randomized inputs across modulus
// sizes.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bigint/bigint.hpp"
#include "mont/ifma_mont.hpp"
#include "mont/mont32.hpp"
#include "mont/mont64.hpp"
#include "mont/vector_mont.hpp"
#include "util/random.hpp"

namespace phissl::mont {
namespace {

using bigint::BigInt;

BigInt random_odd_modulus(std::size_t bits, util::Rng& rng) {
  return BigInt::random_odd_exact_bits(bits, rng);
}

TEST(NegInv, U32KnownValues) {
  for (std::uint32_t x : {1u, 3u, 5u, 0xffffffffu, 0x12345679u}) {
    const std::uint32_t inv = neg_inv_u32(x);
    EXPECT_EQ(static_cast<std::uint32_t>(x * (0u - inv)), 1u) << x;
  }
}

TEST(NegInv, U64KnownValues) {
  for (std::uint64_t x :
       {1ull, 3ull, 0xffffffffffffffffull, 0x123456789abcdef1ull}) {
    const std::uint64_t inv = neg_inv_u64(x);
    EXPECT_EQ(x * (0u - inv), 1ull) << x;
  }
}

TEST(MontCtx32, RejectsBadModulus) {
  EXPECT_THROW(MontCtx32(BigInt{4}), std::invalid_argument);   // even
  EXPECT_THROW(MontCtx32(BigInt{1}), std::invalid_argument);   // too small
  EXPECT_THROW(MontCtx32(BigInt{-7}), std::invalid_argument);  // negative
  EXPECT_THROW(MontCtx32(BigInt{}), std::invalid_argument);    // zero
}

TEST(MontCtx64, RejectsBadModulus) {
  EXPECT_THROW(MontCtx64(BigInt{4}), std::invalid_argument);
  EXPECT_THROW(MontCtx64(BigInt{1}), std::invalid_argument);
}

TEST(VectorMontCtx, RejectsBadModulus) {
  EXPECT_THROW(VectorMontCtx(BigInt{4}), std::invalid_argument);
  EXPECT_THROW(VectorMontCtx(BigInt{1}), std::invalid_argument);
}

TEST(VectorMontCtx, RejectsBadDigitBits) {
  util::Rng rng(1);
  const BigInt m = random_odd_modulus(256, rng);
  EXPECT_THROW(VectorMontCtx(m, 7), std::invalid_argument);
  EXPECT_THROW(VectorMontCtx(m, 30), std::invalid_argument);
  EXPECT_NO_THROW(VectorMontCtx(m, 29));  // fine at 256 bits (d=9)
}

TEST(VectorMontCtx, RejectsOverflowingDigitConfig) {
  util::Rng rng(2);
  // At 29-bit digits, 2048-bit modulus gives d=71: 142 * 2^58 > 2^63.
  const BigInt m = random_odd_modulus(2048, rng);
  EXPECT_THROW(VectorMontCtx(m, 29), std::invalid_argument);
  EXPECT_NO_THROW(VectorMontCtx(m, 27));
}

TEST(VectorMontCtx, PackUnpackRoundTrip) {
  util::Rng rng(3);
  const BigInt m = random_odd_modulus(521, rng);
  const VectorMontCtx ctx(m);
  for (int i = 0; i < 20; ++i) {
    const BigInt x = BigInt::random_below(m, rng);
    EXPECT_EQ(ctx.unpack(ctx.pack(x)), x);
  }
  EXPECT_EQ(ctx.rep_size() % 16, 0u);
  for (const auto digit : ctx.pack(m)) {
    EXPECT_LT(digit, 1u << ctx.digit_bits());
  }
}

TEST(MontCtx32, SmallModulusExactValues) {
  // m = 97: hand-checkable Montgomery arithmetic.
  const BigInt m{97};
  const MontCtx32 ctx(m);
  const auto a = ctx.to_mont(BigInt{5});
  const auto b = ctx.to_mont(BigInt{7});
  MontCtx32::Rep out;
  ctx.mul(a, b, out);
  EXPECT_EQ(ctx.from_mont(out), BigInt{35});
  EXPECT_EQ(ctx.from_mont(ctx.one_mont()), BigInt{1});
  EXPECT_EQ(ctx.from_mont(ctx.to_mont(BigInt{96})), BigInt{96});
  EXPECT_EQ(ctx.from_mont(ctx.to_mont(BigInt{})), BigInt{});
}

TEST(MontCtx32, ToMontRejectsOutOfRange) {
  const MontCtx32 ctx(BigInt{97});
  EXPECT_THROW(ctx.to_mont(BigInt{97}), std::invalid_argument);
  EXPECT_THROW(ctx.to_mont(BigInt{-1}), std::invalid_argument);
}

template <typename Ctx>
class MontDifferential : public ::testing::Test {};

using CtxTypes =
    ::testing::Types<MontCtx32, MontCtx64, VectorMontCtx, IfmaMontCtx>;
TYPED_TEST_SUITE(MontDifferential, CtxTypes);

TYPED_TEST(MontDifferential, MulMatchesOracleAcrossSizes) {
  util::Rng rng(7);
  for (std::size_t bits : {33u, 64u, 128u, 512u, 1024u, 2048u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    const TypeParam ctx(m);
    for (int i = 0; i < 8; ++i) {
      const BigInt x = BigInt::random_below(m, rng);
      const BigInt y = BigInt::random_below(m, rng);
      const auto xm = ctx.to_mont(x);
      const auto ym = ctx.to_mont(y);
      typename TypeParam::Rep out;
      ctx.mul(xm, ym, out);
      EXPECT_EQ(ctx.from_mont(out), (x * y).mod(m))
          << "bits=" << bits << " i=" << i;
    }
  }
}

TYPED_TEST(MontDifferential, RoundTripIdentity) {
  util::Rng rng(8);
  for (std::size_t bits : {65u, 1025u}) {  // off-by-one-from-limb sizes
    const BigInt m = random_odd_modulus(bits, rng);
    const TypeParam ctx(m);
    for (int i = 0; i < 10; ++i) {
      const BigInt x = BigInt::random_below(m, rng);
      EXPECT_EQ(ctx.from_mont(ctx.to_mont(x)), x);
    }
  }
}

TYPED_TEST(MontDifferential, MulByOneAndZero) {
  util::Rng rng(9);
  const BigInt m = random_odd_modulus(512, rng);
  const TypeParam ctx(m);
  const BigInt x = BigInt::random_below(m, rng);
  const auto xm = ctx.to_mont(x);
  typename TypeParam::Rep out;
  ctx.mul(xm, ctx.one_mont(), out);
  EXPECT_EQ(ctx.from_mont(out), x);
  const auto zero = ctx.to_mont(BigInt{});
  ctx.mul(xm, zero, out);
  EXPECT_EQ(ctx.from_mont(out), BigInt{});
}

TYPED_TEST(MontDifferential, SqrMatchesMul) {
  // Differential sqr(a) == mul(a,a) across the full RSA-relevant size range
  // plus the edge operands (0, 1, m-1) that stress the REDC tail and the
  // constant-time final subtract.
  util::Rng rng(10);
  for (std::size_t bits : {512u, 768u, 1024u, 2048u, 3072u, 4096u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    const TypeParam ctx(m);
    std::vector<BigInt> operands = {BigInt{}, BigInt{1}, m - BigInt{1}};
    for (int i = 0; i < 5; ++i) {
      operands.push_back(BigInt::random_below(m, rng));
    }
    for (const BigInt& x : operands) {
      const auto xm = ctx.to_mont(x);
      typename TypeParam::Rep s, p;
      ctx.sqr(xm, s);
      ctx.mul(xm, xm, p);
      EXPECT_EQ(ctx.from_mont(s), ctx.from_mont(p)) << "bits=" << bits;
      EXPECT_EQ(ctx.from_mont(s), (x * x).mod(m)) << "bits=" << bits;
    }
  }
}

TYPED_TEST(MontDifferential, SqrWithWorkspaceMatchesAllocatingPath) {
  // One workspace reused across sizes and operands must give identical
  // results to the allocating overloads (and never corrupt state between
  // calls).
  util::Rng rng(15);
  typename TypeParam::Workspace ws;
  for (std::size_t bits : {512u, 2048u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    const TypeParam ctx(m);
    for (int i = 0; i < 6; ++i) {
      const BigInt x = BigInt::random_below(m, rng);
      const auto xm = ctx.to_mont(x);
      typename TypeParam::Rep s_ws, s_alloc;
      ctx.sqr(xm, s_ws, ws);
      ctx.sqr(xm, s_alloc);
      EXPECT_EQ(s_ws, s_alloc) << "bits=" << bits;
      EXPECT_EQ(ctx.from_mont(s_ws), (x * x).mod(m)) << "bits=" << bits;
    }
  }
}

TYPED_TEST(MontDifferential, WorstCaseOperands) {
  // m-1 (all-ones-ish) operands push the conditional-subtract path.
  util::Rng rng(11);
  for (std::size_t bits : {64u, 512u, 2048u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    const TypeParam ctx(m);
    const BigInt top = m - BigInt{1};
    const auto tm = ctx.to_mont(top);
    typename TypeParam::Rep out;
    ctx.mul(tm, tm, out);
    EXPECT_EQ(ctx.from_mont(out), (top * top).mod(m));
  }
}

TYPED_TEST(MontDifferential, DenseModulus) {
  // Moduli close to 2^bits (many high bits set) stress the final subtract.
  for (std::size_t bits : {96u, 416u, 1056u}) {
    const BigInt m = (BigInt{1} << bits) - BigInt{189};  // odd, dense
    ASSERT_TRUE(m.is_odd());
    const TypeParam ctx(m);
    util::Rng rng(bits);
    for (int i = 0; i < 5; ++i) {
      const BigInt x = BigInt::random_below(m, rng);
      const BigInt y = BigInt::random_below(m, rng);
      const auto xm = ctx.to_mont(x), ym = ctx.to_mont(y);
      typename TypeParam::Rep out;
      ctx.mul(xm, ym, out);
      EXPECT_EQ(ctx.from_mont(out), (x * y).mod(m));
    }
  }
}

TEST(IfmaMont, RejectsBadModulus) {
  EXPECT_THROW(IfmaMontCtx(BigInt{4}), std::invalid_argument);
  EXPECT_THROW(IfmaMontCtx(BigInt{1}), std::invalid_argument);
  EXPECT_THROW(IfmaMontCtx(BigInt{-7}), std::invalid_argument);
  EXPECT_THROW(IfmaMontCtx(BigInt{}), std::invalid_argument);
}

TEST(IfmaMont, PortablePathMatchesDispatchedPath) {
  // The vpmadd52 kernels (when the host dispatches them) and the portable
  // u128-column instantiation implement the same truncated REDC: their
  // residue representations must be bit-identical, not merely congruent.
  util::Rng rng(31);
  for (std::size_t bits : {128u, 512u, 2048u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    const IfmaMontCtx dispatched(m);
    const IfmaMontCtx portable(m, /*force_portable=*/true);
    for (int i = 0; i < 6; ++i) {
      const BigInt x = BigInt::random_below(m, rng);
      const BigInt y = BigInt::random_below(m, rng);
      IfmaMontCtx::Rep od, op, sd, sp;
      dispatched.mul(dispatched.to_mont(x), dispatched.to_mont(y), od);
      portable.mul(portable.to_mont(x), portable.to_mont(y), op);
      EXPECT_EQ(od, op) << "bits=" << bits;
      dispatched.sqr(dispatched.to_mont(x), sd);
      portable.sqr(portable.to_mont(x), sp);
      EXPECT_EQ(sd, sp) << "bits=" << bits;
      EXPECT_EQ(dispatched.from_mont(od), (x * y).mod(m));
    }
  }
}

TEST(IfmaMont, DigitEdgeValues) {
  // Operands and moduli sitting on 52-bit digit boundaries: single-digit
  // saturation (2^52 - 1), the digit rollover (2^52, 2^52 + 1), two-digit
  // saturation (2^104 - 1), and a dense modulus — the patterns that stress
  // the 52-bit masking, the column carries, and the ceiling-trick carry
  // recovery in the truncated REDC.
  const BigInt beta = BigInt{1} << 52;
  for (const BigInt& m : {(BigInt{1} << 416) - BigInt{189},   // dense
                          (BigInt{1} << 208) + BigInt{1},     // 4 digits + 1
                          (beta * beta) * beta - BigInt{1}}) {  // beta^3 - 1
    ASSERT_TRUE(m.is_odd());
    const IfmaMontCtx ctx(m);
    const IfmaMontCtx pctx(m, /*force_portable=*/true);
    std::vector<BigInt> edges = {BigInt{},        BigInt{1},
                                 beta - BigInt{1}, beta,
                                 beta + BigInt{1}, beta * beta - BigInt{1},
                                 m - BigInt{1}};
    // Every-digit-saturated value below m.
    BigInt sat = BigInt{1};
    while (sat * beta <= m) sat = sat * beta;
    edges.push_back(sat - BigInt{1});
    for (const BigInt& x : edges) {
      if (x >= m) continue;
      for (const BigInt& y : edges) {
        if (y >= m) continue;
        IfmaMontCtx::Rep out, pout;
        ctx.mul(ctx.to_mont(x), ctx.to_mont(y), out);
        pctx.mul(pctx.to_mont(x), pctx.to_mont(y), pout);
        const BigInt expected = (x * y).mod(m);
        EXPECT_EQ(ctx.from_mont(out), expected)
            << "x=" << x.to_hex() << " y=" << y.to_hex();
        EXPECT_EQ(pctx.from_mont(pout), expected);
      }
      IfmaMontCtx::Rep s;
      ctx.sqr(ctx.to_mont(x), s);
      EXPECT_EQ(ctx.from_mont(s), (x * x).mod(m)) << x.to_hex();
    }
  }
}

TEST(IfmaMont, CrossBackendAgreementAcrossSizes) {
  // Randomized ifma52 (both paths) vs scalar64 vs the KNC-style vector
  // backend at every RSA-relevant size, against the division oracle.
  util::Rng rng(32);
  for (std::size_t bits : {512u, 1024u, 2048u, 4096u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    const MontCtx64 c64(m);
    const VectorMontCtx cv(m);
    const IfmaMontCtx ci(m);
    const IfmaMontCtx cp(m, /*force_portable=*/true);
    for (int i = 0; i < 4; ++i) {
      const BigInt x = BigInt::random_below(m, rng);
      const BigInt y = BigInt::random_below(m, rng);
      MontCtx64::Rep o64;
      VectorMontCtx::Rep ov;
      IfmaMontCtx::Rep oi, op;
      c64.mul(c64.to_mont(x), c64.to_mont(y), o64);
      cv.mul(cv.to_mont(x), cv.to_mont(y), ov);
      ci.mul(ci.to_mont(x), ci.to_mont(y), oi);
      cp.mul(cp.to_mont(x), cp.to_mont(y), op);
      const BigInt expected = (x * y).mod(m);
      EXPECT_EQ(c64.from_mont(o64), expected) << "bits=" << bits;
      EXPECT_EQ(cv.from_mont(ov), expected) << "bits=" << bits;
      EXPECT_EQ(ci.from_mont(oi), expected) << "bits=" << bits;
      EXPECT_EQ(cp.from_mont(op), expected) << "bits=" << bits;
    }
  }
}

TEST(IfmaMont, MulAllowsAliasedOutput) {
  util::Rng rng(33);
  const BigInt m = random_odd_modulus(512, rng);
  const IfmaMontCtx ctx(m);
  const BigInt x = BigInt::random_below(m, rng);
  const BigInt y = BigInt::random_below(m, rng);
  auto xm = ctx.to_mont(x);
  const auto ym = ctx.to_mont(y);
  ctx.mul(xm, ym, xm);  // out aliases a
  EXPECT_EQ(ctx.from_mont(xm), (x * y).mod(m));
  auto zm = ctx.to_mont(x);
  ctx.sqr(zm, zm);  // out aliases a in sqr too
  EXPECT_EQ(ctx.from_mont(zm), (x * x).mod(m));
}

TEST(IfmaMont, SharedWorkspaceAcrossGeometries) {
  // Regression: one Workspace serves contexts of different digit geometry
  // (rsa::Engine keeps a single thread_local ExpWorkspace<IfmaMontCtx>
  // that is shared between the full-size public ctx and the half-size CRT
  // ctxs). A mul mod the big modulus used to leave its digits in ws.opad
  // past the small context's padded_digits(), exactly where the
  // column-blocked IFMA kernels issue unmasked 8-word loads — the small
  // context must re-zero that tail on every call.
  util::Rng rng(34);
  const BigInt mbig = random_odd_modulus(2048, rng);
  const BigInt mhalf = random_odd_modulus(1024, rng);
  for (const bool portable : {false, true}) {
    const IfmaMontCtx big(mbig, portable);
    const IfmaMontCtx half(mhalf, portable);
    IfmaMontCtx::Workspace ws;
    BigInt got;
    for (int i = 0; i < 4; ++i) {
      const BigInt a = BigInt::random_below(mbig, rng);
      const BigInt b = BigInt::random_below(mbig, rng);
      const BigInt x = BigInt::random_below(mhalf, rng);
      const BigInt y = BigInt::random_below(mhalf, rng);
      IfmaMontCtx::Rep am, bm, o, xm, ym;
      // Big-geometry traffic first: fills the shared scratch (opad
      // included) with the large modulus' digits.
      big.to_mont(a, am, ws);
      big.to_mont(b, bm, ws);
      big.mul(am, bm, o, ws);
      big.from_mont(o, got, ws);
      EXPECT_EQ(got, (a * b).mod(mbig)) << "portable=" << portable;
      // Then half-size traffic through the SAME workspace.
      half.to_mont(x, xm, ws);
      half.to_mont(y, ym, ws);
      half.mul(xm, ym, o, ws);
      half.from_mont(o, got, ws);
      EXPECT_EQ(got, (x * y).mod(mhalf)) << "portable=" << portable;
      half.sqr(xm, o, ws);
      half.from_mont(o, got, ws);
      EXPECT_EQ(got, (x * x).mod(mhalf)) << "portable=" << portable;
    }
    // Same hazard made deterministic: dirty every word past the half-size
    // context's digit window (the region big-geometry traffic leaves
    // stale) and check the half-size results are unaffected.
    const BigInt x = BigInt::random_below(mhalf, rng);
    const BigInt y = BigInt::random_below(mhalf, rng);
    IfmaMontCtx::Rep xm, ym, o;
    half.to_mont(x, xm, ws);
    half.to_mont(y, ym, ws);
    for (std::size_t k = 16 + half.padded_digits(); k < ws.opad.size(); ++k) {
      ws.opad[k] = (std::uint64_t{1} << 52) - 1;
    }
    half.mul(xm, ym, o, ws);
    half.from_mont(o, got, ws);
    EXPECT_EQ(got, (x * y).mod(mhalf)) << "portable=" << portable;
    for (std::size_t k = 16 + half.padded_digits(); k < ws.opad.size(); ++k) {
      ws.opad[k] = (std::uint64_t{1} << 52) - 1;
    }
    half.sqr(xm, o, ws);
    half.from_mont(o, got, ws);
    EXPECT_EQ(got, (x * x).mod(mhalf)) << "portable=" << portable;
  }
}

TEST(VectorMont, VectorMatchesScalarRefAcrossDigitWidths) {
  util::Rng rng(12);
  for (unsigned db : {8u, 13u, 20u, 24u, 26u, 27u}) {
    const BigInt m = random_odd_modulus(512, rng);
    const VectorMontCtx ctx(m, db);
    for (int i = 0; i < 6; ++i) {
      const BigInt x = BigInt::random_below(m, rng);
      const BigInt y = BigInt::random_below(m, rng);
      const auto xm = ctx.to_mont(x), ym = ctx.to_mont(y);
      VectorMontCtx::Rep v, s;
      ctx.mul(xm, ym, v);
      ctx.mul_scalar_ref(xm, ym, s);
      EXPECT_EQ(v, s) << "digit_bits=" << db;
      EXPECT_EQ(ctx.from_mont(v), (x * y).mod(m)) << "digit_bits=" << db;
    }
  }
}

TEST(VectorMont, CrossContextAgreement) {
  util::Rng rng(13);
  for (std::size_t bits : {128u, 1024u, 3072u}) {
    const BigInt m = random_odd_modulus(bits, rng);
    const MontCtx32 c32(m);
    const MontCtx64 c64(m);
    const VectorMontCtx cv(m);
    for (int i = 0; i < 5; ++i) {
      const BigInt x = BigInt::random_below(m, rng);
      const BigInt y = BigInt::random_below(m, rng);
      MontCtx32::Rep o32;
      MontCtx64::Rep o64;
      VectorMontCtx::Rep ov;
      c32.mul(c32.to_mont(x), c32.to_mont(y), o32);
      c64.mul(c64.to_mont(x), c64.to_mont(y), o64);
      cv.mul(cv.to_mont(x), cv.to_mont(y), ov);
      const BigInt expected = (x * y).mod(m);
      EXPECT_EQ(c32.from_mont(o32), expected);
      EXPECT_EQ(c64.from_mont(o64), expected);
      EXPECT_EQ(cv.from_mont(ov), expected);
    }
  }
}

TEST(VectorMont, SqrFallbackThresholdIsStructural) {
  // Below kSqrMinDigits the dedicated squaring kernel loses to the plain
  // multiply (bench_mont_exp's sqr-ratio check measured the regression),
  // so sqr() must route through mul there and report it via sqr_uses_mul.
  util::Rng rng(16);
  const VectorMontCtx small(random_odd_modulus(512, rng));   // d = 19
  const VectorMontCtx large(random_odd_modulus(2048, rng));  // d = 76
  EXPECT_LT(small.digits(), VectorMontCtx::kSqrMinDigits);
  EXPECT_TRUE(small.sqr_uses_mul());
  EXPECT_GE(large.digits(), VectorMontCtx::kSqrMinDigits);
  EXPECT_FALSE(large.sqr_uses_mul());
}

TEST(VectorMont, MulAllowsAliasedOutput) {
  util::Rng rng(14);
  const BigInt m = random_odd_modulus(256, rng);
  const VectorMontCtx ctx(m);
  const BigInt x = BigInt::random_below(m, rng);
  const BigInt y = BigInt::random_below(m, rng);
  auto xm = ctx.to_mont(x);
  const auto ym = ctx.to_mont(y);
  const BigInt expected = (x * y).mod(m);
  ctx.mul(xm, ym, xm);  // out aliases a
  EXPECT_EQ(ctx.from_mont(xm), expected);
}

}  // namespace
}  // namespace phissl::mont
