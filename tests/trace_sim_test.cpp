// Trace-driven pipeline simulator tests: trace synthesis fidelity, issue
// rules, and — the point of the module — agreement between the
// cycle-stepped simulation and the closed-form CoreModel.
#include <gtest/gtest.h>

#include "phisim/core_model.hpp"
#include "phisim/trace_sim.hpp"

namespace phissl::phisim {
namespace {

TEST(TraceSynthesis, PreservesMixProportions) {
  const KernelProfile p = profile_vector_mont_mul(1024);
  const auto trace = synthesize_trace(p, 2000);
  EXPECT_LE(trace.size(), 2100u);
  const KernelProfile q = profile_of_trace(trace, p.serial_fraction);
  // Ratios preserved within rounding.
  EXPECT_NEAR(q.vec_mul / q.vec_alu, p.vec_mul / p.vec_alu, 0.05);
  EXPECT_NEAR(q.vec_load / q.vec_store, p.vec_load / p.vec_store, 0.05);
}

TEST(TraceSynthesis, DependencyFractionMatchesSerialFraction) {
  KernelProfile p;
  p.vec_alu = 10000;
  for (const double sf : {0.0, 0.25, 0.5, 1.0}) {
    p.serial_fraction = sf;
    const auto trace = synthesize_trace(p, 4000);
    double dependent = 0;
    for (const auto& op : trace) {
      if (op.depends_on_prev) dependent += 1;
    }
    EXPECT_NEAR(dependent / static_cast<double>(trace.size()), sf, 0.05)
        << "sf=" << sf;
  }
}

TEST(TraceSynthesis, DeterministicAndNonEmpty) {
  const KernelProfile p = profile_scalar32_mont_mul(512);
  const auto a = synthesize_trace(p);
  const auto b = synthesize_trace(p);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].cls, b[i].cls);
    EXPECT_EQ(a[i].depends_on_prev, b[i].depends_on_prev);
  }
}

TEST(TraceSim, SingleThreadIssueGapVisible) {
  // Independent 1-cycle ops: one thread can use at most every other
  // cycle; two threads fill the gaps for ~2x throughput.
  KernelProfile p;
  p.vec_alu = 1000;
  p.serial_fraction = 0.0;
  const auto trace = synthesize_trace(p, 1000);
  const auto t1 = simulate_core(trace, 1);
  const auto t2 = simulate_core(trace, 2);
  EXPECT_NEAR(t2.ops_per_cycle / t1.ops_per_cycle, 2.0, 0.1);
  EXPECT_NEAR(t2.ops_per_cycle, 1.0, 0.05);  // U pipe saturated
}

TEST(TraceSim, SerialChainExposesLatency) {
  // Fully dependent vector ops: each must wait the 4-cycle latency.
  KernelProfile p;
  p.vec_alu = 1000;
  p.serial_fraction = 1.0;
  const auto trace = synthesize_trace(p, 1000);
  const auto t1 = simulate_core(trace, 1);
  EXPECT_NEAR(t1.ops_per_cycle, 0.25, 0.03);  // 1 op / 4 cycles
  // Four threads hide the latency completely.
  const auto t4 = simulate_core(trace, 4);
  EXPECT_NEAR(t4.ops_per_cycle, 1.0, 0.05);
}

TEST(TraceSim, DualIssuePairsScalarOps) {
  // Independent mix of vector (U) and scalar ALU (V-pairable): both pipes
  // run, throughput approaches 2 ops/cycle with enough threads.
  KernelProfile p;
  p.vec_alu = 500;
  p.scalar_alu = 500;
  p.serial_fraction = 0.0;
  const auto trace = synthesize_trace(p, 1000);
  const auto t4 = simulate_core(trace, 4);
  EXPECT_GT(t4.ops_per_cycle, 1.5);
}

TEST(TraceSim, MonotoneInThreads) {
  for (const KernelProfile& p :
       {profile_vector_mont_mul(512), profile_scalar32_mont_mul(512),
        profile_scalar64_mont_mul(512)}) {
    const auto trace = synthesize_trace(p, 3000);
    double prev = 0;
    for (int t = 1; t <= 4; ++t) {
      const double cur = simulate_core(trace, t).traces_per_kcycle;
      EXPECT_GE(cur, prev * 0.999) << p.label << " t=" << t;
      prev = cur;
    }
  }
}

TEST(TraceSim, AgreesWithClosedFormModel) {
  // The reason this module exists: the analytic CoreModel and the
  // cycle-stepped simulation must tell the same story for the real kernel
  // profiles, across thread counts.
  const CoreModel model;
  for (const KernelProfile& p :
       {profile_vector_mont_mul(1024), profile_scalar32_mont_mul(1024),
        profile_scalar64_mont_mul(1024)}) {
    const auto trace = synthesize_trace(p, 3000);
    const KernelProfile scaled = profile_of_trace(trace, p.serial_fraction);
    for (int t = 1; t <= 4; ++t) {
      const double analytic =
          model.throughput_per_cycle(scaled, t) * 1000.0;  // traces/kcycle
      const double simulated = simulate_core(trace, t).traces_per_kcycle;
      const double ratio = simulated / analytic;
      EXPECT_GT(ratio, 0.55) << p.label << " t=" << t;
      EXPECT_LT(ratio, 1.9) << p.label << " t=" << t;
    }
  }
}

TEST(TraceSim, PreservesKernelOrdering) {
  // Whatever the absolute agreement, the vector kernel must beat both
  // scalar kernels in the trace simulation too (at equal work scale the
  // comparison is per-instruction-budget; compare full-size traces).
  const auto vec = synthesize_trace(profile_vector_mont_mul(1024), 100000);
  const auto s32 = synthesize_trace(profile_scalar32_mont_mul(1024), 100000);
  const auto s64 = synthesize_trace(profile_scalar64_mont_mul(1024), 100000);
  // One full kernel invocation per trace: compare cycles directly.
  const auto cv = simulate_core(vec, 4, 1).cycles;
  const auto c32 = simulate_core(s32, 4, 1).cycles;
  const auto c64 = simulate_core(s64, 4, 1).cycles;
  EXPECT_LT(cv, c64);
  EXPECT_LT(c64, c32);
}

TEST(TraceSim, RejectsBadArguments) {
  KernelProfile p;
  p.vec_alu = 10;
  const auto trace = synthesize_trace(p);
  EXPECT_THROW(simulate_core(trace, 0), std::invalid_argument);
  EXPECT_THROW(simulate_core(trace, 5), std::invalid_argument);
  EXPECT_THROW(simulate_core({}, 1), std::invalid_argument);
  KernelProfile empty;
  EXPECT_THROW(synthesize_trace(empty), std::invalid_argument);
}

}  // namespace
}  // namespace phissl::phisim
