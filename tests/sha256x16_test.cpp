// Multi-buffer SHA-256: every lane must match the scalar reference for
// all padding layouts (len % 64 below/at/above 56) and distinct contents.
#include <gtest/gtest.h>

#include <vector>

#include "simd/sha256x16.hpp"
#include "util/random.hpp"

namespace phissl::simd {
namespace {

class Sha256X16Test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256X16Test, MatchesScalarPerLane) {
  const std::size_t len = GetParam();
  util::Rng rng(len + 1);
  std::array<std::vector<std::uint8_t>, 16> bufs;
  std::array<std::span<const std::uint8_t>, 16> spans;
  for (std::size_t l = 0; l < 16; ++l) {
    bufs[l] = rng.bytes(len);
    spans[l] = bufs[l];
  }
  const auto got = sha256_x16(spans);
  for (std::size_t l = 0; l < 16; ++l) {
    EXPECT_EQ(got[l], util::Sha256::hash(spans[l])) << "len=" << len
                                                    << " lane=" << l;
  }
}

// Lengths chosen to hit every padding configuration: empty, short, the
// 55/56 one-vs-two-final-block boundary, exact block multiples, and
// multi-block messages.
INSTANTIATE_TEST_SUITE_P(PaddingLayouts, Sha256X16Test,
                         ::testing::Values<std::size_t>(0, 1, 3, 55, 56, 63,
                                                        64, 65, 119, 120, 127,
                                                        128, 1000),
                         [](const auto& param_info) {
                           return "len" + std::to_string(param_info.param);
                         });

TEST(Sha256X16, RejectsUnequalLengths) {
  std::vector<std::uint8_t> a(10), b(11);
  std::array<std::span<const std::uint8_t>, 16> spans;
  spans.fill(a);
  spans[7] = b;
  EXPECT_THROW(sha256_x16(spans), std::invalid_argument);
}

TEST(Sha256X16, IdenticalLanesProduceIdenticalDigests) {
  util::Rng rng(9);
  const auto msg = rng.bytes(200);
  std::array<std::span<const std::uint8_t>, 16> spans;
  spans.fill(msg);
  const auto got = sha256_x16(spans);
  for (std::size_t l = 1; l < 16; ++l) EXPECT_EQ(got[l], got[0]);
  EXPECT_EQ(got[0], util::Sha256::hash(msg));
}

}  // namespace
}  // namespace phissl::simd
