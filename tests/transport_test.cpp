// Socket-transport integration tests: the epoll frontend
// (ssl/async/transport.hpp) against real loopback sockets driven by raw
// client fds — byte-at-a-time writes through the frame reader, server
// flights split across EAGAIN by a shrunken send buffer, a peer RST
// landing while the connection is parked on its batched private op (the
// zombie-slot path: the slot must recycle and the stale batch result be
// discarded), FIN-vs-alert close ordering (a protocol failure must reach
// the client as an alert then a clean EOF, not a reset), and a
// 512-connection churn through the full socket driver path. Suite names
// start with AsyncSocket so the CI TSan leg picks them up.
#ifdef __linux__

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "rsa/key.hpp"
#include "ssl/async/connection.hpp"
#include "ssl/async/transport.hpp"
#include "ssl/async/wire.hpp"
#include "ssl/driver.hpp"

namespace phissl::ssl::async {
namespace {

rsa::EngineOptions test_opts() { return rsa::EngineOptions{}; }

// Blocking loopback connect to the frontend's ephemeral port.
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0)
      << std::strerror(errno);
  return fd;
}

void write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

// Reads whatever arrives within timeout_ms (one poll round).
std::vector<std::uint8_t> read_some(int fd, int timeout_ms) {
  pollfd p{fd, POLLIN, 0};
  if (::poll(&p, 1, timeout_ms) <= 0) return {};
  std::vector<std::uint8_t> buf(64 * 1024);
  const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
  if (n <= 0) return {};
  buf.resize(static_cast<std::size_t>(n));
  return buf;
}

// Drives a ScriptedClient over a blocking fd until it settles (or the
// deadline passes). write_chunk = 1 exercises byte-at-a-time writes.
void pump_client(int fd, ScriptedClient& client, std::size_t write_chunk,
                 int read_delay_ms = 0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!client.done() && !client.failed() &&
         std::chrono::steady_clock::now() < deadline) {
    const auto out = client.take_output();
    for (std::size_t off = 0; off < out.size(); off += write_chunk) {
      const std::size_t n = std::min(write_chunk, out.size() - off);
      write_all(fd, std::span<const std::uint8_t>(out.data() + off, n));
    }
    if (read_delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(read_delay_ms));
    }
    const auto in = read_some(fd, 50);
    if (!in.empty()) client.on_server_bytes(in);
  }
  // Flush anything the settle step queued (the kClose frame).
  const auto out = client.take_output();
  if (!out.empty()) write_all(fd, out);
}

TEST(AsyncSocketTest, ByteAtATimeClientWritesTerminate) {
  const rsa::Engine engine(rsa::test_key(512), test_opts());
  DriverConfig cfg;
  cfg.frontend = Frontend::kSocket;
  cfg.num_handshakes = 1;
  cfg.event_workers = 2;
  SocketFrontend frontend(engine, cfg);

  DriverReport report;
  std::thread server([&] { report = frontend.run(); });

  const int fd = connect_loopback(frontend.port());
  const rsa::Engine pub(rsa::test_key(512).pub, test_opts());
  ScriptedClient client(pub, 7);
  client.start();
  pump_client(fd, client, /*write_chunk=*/1);
  ::close(fd);
  server.join();

  EXPECT_TRUE(client.done());
  EXPECT_FALSE(client.failed());
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.accepts, 1u);
}

TEST(AsyncSocketTest, ServerFlightSplitsAcrossEagain) {
  const rsa::Engine engine(rsa::test_key(512), test_opts());
  DriverConfig cfg;
  cfg.frontend = Frontend::kSocket;
  cfg.num_handshakes = 1;
  cfg.event_workers = 2;
  // Shrink the accepted socket's send buffer (the kernel floors it around
  // a few KiB) and make the echo payload 256 KiB: the server's echo
  // flight cannot possibly fit, so send() must hit EAGAIN and the flight
  // must finish across multiple readiness cycles.
  SocketTransportConfig tcfg;
  tcfg.accepted_sndbuf = 4096;
  SocketFrontend frontend(engine, cfg, tcfg);

  DriverReport report;
  std::thread server([&] { report = frontend.run(); });

  const int fd = connect_loopback(frontend.port());
  const rsa::Engine pub(rsa::test_key(512).pub, test_opts());
  ScriptedClient client(pub, 9);
  client.set_ping_size(256 * 1024);
  client.start();
  // A small read delay keeps the client from draining the wire as fast
  // as the server fills it, guaranteeing backpressure.
  pump_client(fd, client, /*write_chunk=*/4096, /*read_delay_ms=*/2);
  ::close(fd);
  server.join();

  // done() implies the client verified the full 256 KiB echo byte-exact —
  // the split flight reassembled correctly.
  EXPECT_TRUE(client.done());
  EXPECT_EQ(report.completed, 1u);
  EXPECT_EQ(report.failed, 0u);
  const SocketTransportStats stats = frontend.transport_stats();
  EXPECT_GT(stats.eagain_writes, 0u);
}

TEST(AsyncSocketTest, ClientRstDuringAwaitPrivateOpRecyclesSlot) {
  const rsa::Engine engine(rsa::test_key(512), test_opts());
  DriverConfig cfg;
  cfg.frontend = Frontend::kSocket;
  cfg.num_handshakes = 1;
  cfg.event_workers = 2;
  // A long linger guarantees the connection is still parked in
  // kAwaitPrivateOp (its single-lane batch is waiting for lanemates that
  // never come) when the RST lands. The reactor must note the peer loss
  // immediately, hold the slot as a zombie until the batch completes,
  // then discard the stale result and finish the run — not hang, and not
  // resume a recycled connection with another connection's result.
  cfg.batch_linger = std::chrono::microseconds(1'000'000);
  SocketFrontend frontend(engine, cfg);

  DriverReport report;
  std::thread server([&] { report = frontend.run(); });

  const int fd = connect_loopback(frontend.port());
  const rsa::Engine pub(rsa::test_key(512).pub, test_opts());
  ScriptedClient client(pub, 11);
  client.start();
  // Drive through ClientKeyExchange + Finished: write the hello, collect
  // the server flight, write the client's second flight.
  {
    const auto hello = client.take_output();
    write_all(fd, hello);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (client.output_pending() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      const auto in = read_some(fd, 50);
      if (!in.empty()) client.on_server_bytes(in);
    }
    ASSERT_GT(client.output_pending(), 0u) << "no second client flight";
    write_all(fd, client.take_output());
  }
  // Give the server time to consume the Finished and park on the op,
  // then reset the connection: SO_LINGER{on, 0} turns close() into RST.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const linger lg{1, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);

  server.join();  // must return once the lingering batch resolves

  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.resets, 1u);
  EXPECT_GE(frontend.transport_stats().resets, 1u);
}

TEST(AsyncSocketTest, ProtocolFailureAlertsThenFinsCleanly) {
  const rsa::Engine engine(rsa::test_key(512), test_opts());
  DriverConfig cfg;
  cfg.frontend = Frontend::kSocket;
  cfg.num_handshakes = 1;
  cfg.event_workers = 2;
  SocketFrontend frontend(engine, cfg);

  DriverReport report;
  std::thread server([&] { report = frontend.run(); });

  const int fd = connect_loopback(frontend.port());
  // An unknown frame type in kReadingClientHello is a protocol failure:
  // the server must flush an alert frame and only then FIN — the client
  // sees alert bytes followed by a CLEAN EOF, never ECONNRESET.
  const std::uint8_t garbage[4] = {200, 0, 0, 0};
  write_all(fd, garbage);

  std::vector<std::uint8_t> got;
  bool clean_eof = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 50) <= 0) continue;
    std::uint8_t buf[256];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      got.insert(got.end(), buf, buf + n);
      continue;
    }
    EXPECT_EQ(n, 0) << "reset instead of FIN: " << std::strerror(errno);
    clean_eof = (n == 0);
    break;
  }
  ::close(fd);
  server.join();

  EXPECT_TRUE(clean_eof);
  ASSERT_GE(got.size(), 4u);  // [kAlert][len:3] at minimum
  EXPECT_EQ(static_cast<MsgType>(got[0]), MsgType::kAlert);
  EXPECT_EQ(report.failed, 1u);
  EXPECT_EQ(report.resets, 0u);  // orderly (if unhappy) close, not a reset
  EXPECT_EQ(frontend.transport_stats().resets, 0u);
}

TEST(AsyncSocketChurn, Churn512ConnectionsOver2Workers) {
  // The full socket driver path — epoll frontend plus the in-process
  // client fleet — at enough volume that slots recycle many times and
  // resumed handshakes interleave with full ones. No wall-clock
  // assertions, so the TSan leg can run it under instrumentation.
  const rsa::Engine engine(rsa::test_key(512), test_opts());
  DriverConfig cfg;
  cfg.frontend = Frontend::kSocket;
  cfg.num_handshakes = 512;
  cfg.event_workers = 2;
  cfg.max_open_connections = 128;
  cfg.socket_clients = 64;
  cfg.resumption_ratio = 0.5;
  const DriverReport r = run_handshakes(engine, cfg);

  EXPECT_EQ(r.completed, 512u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.shed, 0u);
  EXPECT_EQ(r.accepts, 512u);
  EXPECT_GT(r.resumed, 0u);
  EXPECT_GT(r.batches, 0u);
}

}  // namespace
}  // namespace phissl::ssl::async

#endif  // __linux__
