// Unit tests for BigInt against fixed vectors (generated independently with
// Python's arbitrary-precision integers) plus edge-case behaviour.
#include <gtest/gtest.h>

#include <stdexcept>

#include "bigint/bigint.hpp"
#include "util/random.hpp"

namespace phissl::bigint {
namespace {

// 1000-bit / 900-bit fixture values and their Python-computed results.
constexpr const char* kA =
    "cdb8b6d8fe442e3d437204e52db2221a58008a05a6c4647159c324c9859b810e766ec9d2"
    "8663ca828dd5f4b3b2e4b06ce60741c7a87ce42c8218072e8c35bf992dc9e9c616612e76"
    "96a6cecc1b78e510617311d8a3c2ce6f447ed4d57b1e2feb89414c343c1027c4d1c386bb"
    "c4cd613e30d8f16adf91b7584a2265b1f5";
constexpr const char* kB =
    "38d88348a7eed8d14f06d3fef701966a0c381e88f38c0c8fd8712b8bc076f3787b9d179e"
    "06c0fd4f5f8130c4237730edfafbd67f9619699cfe1988ad9f06c144a025b413f8a9a021"
    "ea648a7dd06839eb905b6e6e307d4bedc51431193e6c3f3391a2b8f1ff1fd42a29755d4c"
    "13a902931";
constexpr const char* kSum =
    "cdb8b6d8fe442e3d437204e5313faa4ee27f7792bbb4d1b149333e30265f02f705a78a9b"
    "83eadd3b49dd63eb3a9e81e6c673519c9e74f738c44f7a3d6be57d01272b805fe642c701"
    "70973ae0657b4051a0fdabdac2691717218558743423e6d26c4920f318616ad665aa4aae"
    "fde78ccd50caeead82290d2d0b5cf5db26";
constexpr const char* kDiff =
    "cdb8b6d8fe442e3d437204e52a2499e5cd819c7891d3f7316a530b62e4d7ff25e7360909"
    "88dcb7c9d1ce857c2b2adef3059b31f2b284d1203fe0941fac8602313468532c467f95eb"
    "bcb662b7d17689cf21e877d6851c85c767785136c2187904a63977755fbee4b33ddcc2c8"
    "8bb335af10e6f4283cfa618388e7d588c4";
constexpr const char* kProd =
    "2dae6559a72d5a066a78ec6006977677dbbe0563570ffc897d722438cad2611c17dc019b"
    "21e91e380e925b114382aa71d65026a163a15c944cc99101108b11bc8ba570c573c9c5c6"
    "3f0d6442f3e7ba6c1f0ed4ac80e4bc991a3d388eba8558ae8851abf49f01f2707e35bdc8"
    "c05de9abf4281f642befde54ac5dd03049def029b6dc0d27adf1e9bf322467542d335f09"
    "56f9dffd2f1d40617c057a521dd85c817cc58b95f262574fdd4a52af1b7d3c8e8d6a016d"
    "f05cbbf1f34005c1b570671cbf5e1d19a526fc9714cd056e8a14a478ceb09d15aa34fae7"
    "5acef310e490a32d0c330b3e769761d36ed7ac74ce5";
constexpr const char* kQuot = "39e730c31cd4bfdb33995ade90";
constexpr const char* kRem =
    "1a4fcf7db3261a9ea145f28bbc09f9d67da31e5de4c2796718d8ef139364292a0ce8c93e"
    "79ba532bfbca8997090a3eb23b381a2dbb6e9d5a26a5995df060d725e04d91395a32ff4f"
    "bb1ca2c7d7a52e14eaf0c74af8867ca6ad5dc1d465b5b76e73318c9405fdd83a6d7d3bc0"
    "695c0865";
constexpr const char* kM =
    "a46d6753ec148cb48e73ca47ea90a8f0d66b829e6a8ac4ba05805975ed2f89d94a2f20aa"
    "f3c64af775a89294c2cd789a380208a9ad45f23d3b1a11df587fd281";
constexpr const char* kE =
    "efba91fc803468b6b610a9f7f9270f4eb8b333a8e5446dd4552b82f6be3edc0a1ef2a4f0"
    "4be03db0dc2574bdb94067edfe175330a11d459a2f978d8719999e3f";
constexpr const char* kBase =
    "815a47c5f0dfb4a5d8a064df7fd63116e1ea24c4f9341c68966baea148beab134da98f1d"
    "3099fdf5ab99254ae901e35cd47d380d81f9c1f66c0f3459f79b17ae";
constexpr const char* kModPow =
    "3c6938e41fbaefaeef77a68f84017dd48700de1315d3d5c4ed66da006c002c392f736126"
    "d9aa7a6dc6f63f1254e2296090fb087adb07064c519a161523b32cc4";
constexpr const char* kDecA =
    "861064065739910089272464951368174031524040067306802548082257876035300878"
    "420718333321174460652831423336773289317132103055688598938295295547892753"
    "386882024620490196004031747619764035083180615111147291145275312158837161"
    "6898911504816555959891312097130169449473961398351704722673406850981256051"
    "831605670389";

TEST(BigIntBasic, ZeroProperties) {
  const BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_FALSE(z.is_negative());
  EXPECT_EQ(z.bit_length(), 0u);
  EXPECT_EQ(z.to_hex(), "0");
  EXPECT_EQ(z.to_decimal(), "0");
  EXPECT_TRUE(z.to_bytes_be().empty());
  EXPECT_EQ(z, BigInt{0});
  EXPECT_EQ(-z, z);
}

TEST(BigIntBasic, SmallConstruction) {
  EXPECT_EQ(BigInt{1}.to_hex(), "1");
  EXPECT_EQ(BigInt{-1}.to_hex(), "-1");
  EXPECT_EQ(BigInt{255}.to_hex(), "ff");
  EXPECT_EQ(BigInt::from_u64(0xffffffffffffffffULL).to_hex(),
            "ffffffffffffffff");
  EXPECT_EQ(BigInt{INT64_MIN}.to_hex(), "-8000000000000000");
}

TEST(BigIntBasic, HexRoundTrip) {
  const BigInt a = BigInt::from_hex(kA);
  EXPECT_EQ(a.to_hex(), kA);
  EXPECT_EQ(BigInt::from_hex("0x00ff").to_hex(), "ff");
  EXPECT_EQ(BigInt::from_hex("-ff").to_hex(), "-ff");
  EXPECT_EQ(BigInt::from_hex("-0").to_hex(), "0");  // -0 normalizes to 0
  EXPECT_THROW(BigInt::from_hex(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_hex("xyz"), std::invalid_argument);
}

TEST(BigIntBasic, DecimalConversion) {
  const BigInt a = BigInt::from_hex(kA);
  EXPECT_EQ(a.to_decimal(), kDecA);
  EXPECT_EQ(BigInt::from_decimal(kDecA), a);
  EXPECT_EQ(BigInt::from_decimal("-12345").to_decimal(), "-12345");
  EXPECT_EQ(BigInt::from_decimal("0").to_decimal(), "0");
  EXPECT_EQ(BigInt::from_decimal("1000000000").to_decimal(), "1000000000");
  EXPECT_THROW(BigInt::from_decimal("12a"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_decimal(""), std::invalid_argument);
}

TEST(BigIntBasic, BytesRoundTrip) {
  const BigInt a = BigInt::from_hex(kA);
  const auto bytes = a.to_bytes_be();
  EXPECT_EQ(BigInt::from_bytes_be(bytes), a);
  // Fixed-size padding.
  const auto padded = BigInt{0x1234}.to_bytes_be(8);
  ASSERT_EQ(padded.size(), 8u);
  EXPECT_EQ(padded[6], 0x12);
  EXPECT_EQ(padded[7], 0x34);
  EXPECT_EQ(padded[0], 0x00);
  EXPECT_THROW(a.to_bytes_be(4), std::length_error);
}

TEST(BigIntArith, AddSubFixedVectors) {
  const BigInt a = BigInt::from_hex(kA);
  const BigInt b = BigInt::from_hex(kB);
  EXPECT_EQ((a + b).to_hex(), kSum);
  EXPECT_EQ((a - b).to_hex(), kDiff);
  EXPECT_EQ((b - a).to_hex(), std::string("-") + kDiff);
  EXPECT_EQ(a + (-a), BigInt{});
}

TEST(BigIntArith, MulFixedVector) {
  const BigInt a = BigInt::from_hex(kA);
  const BigInt b = BigInt::from_hex(kB);
  EXPECT_EQ((a * b).to_hex(), kProd);
  EXPECT_EQ((b * a).to_hex(), kProd);
  EXPECT_EQ(((-a) * b).to_hex(), std::string("-") + kProd);
  EXPECT_EQ(((-a) * (-b)).to_hex(), kProd);
}

TEST(BigIntArith, DivModFixedVector) {
  const BigInt a = BigInt::from_hex(kA);
  const BigInt b = BigInt::from_hex(kB);
  EXPECT_EQ((a / b).to_hex(), kQuot);
  EXPECT_EQ((a % b).to_hex(), kRem);
  BigInt q, r;
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
}

TEST(BigIntArith, TruncatedDivisionSigns) {
  const BigInt seven{7}, three{3};
  EXPECT_EQ((seven / three).to_decimal(), "2");
  EXPECT_EQ((seven % three).to_decimal(), "1");
  EXPECT_EQ(((-seven) / three).to_decimal(), "-2");
  EXPECT_EQ(((-seven) % three).to_decimal(), "-1");
  EXPECT_EQ((seven / (-three)).to_decimal(), "-2");
  EXPECT_EQ((seven % (-three)).to_decimal(), "1");
  EXPECT_EQ(((-seven) % (-three)).to_decimal(), "-1");
}

TEST(BigIntArith, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{}, std::domain_error);
  EXPECT_THROW(BigInt{1} % BigInt{}, std::domain_error);
}

TEST(BigIntArith, DivisorLargerThanDividend) {
  const BigInt small{5}, big = BigInt::from_hex(kA);
  EXPECT_EQ(small / big, BigInt{});
  EXPECT_EQ(small % big, small);
}

TEST(BigIntArith, SingleLimbDivision) {
  const BigInt a = BigInt::from_hex(kA);
  const BigInt d{0x12345};
  BigInt q, r;
  BigInt::divmod(a, d, q, r);
  EXPECT_EQ(q * d + r, a);
  EXPECT_LT(r, d);
}

TEST(BigIntArith, Shifts) {
  const BigInt one{1};
  EXPECT_EQ((one << 100).bit_length(), 101u);
  EXPECT_EQ(((one << 100) >> 100), one);
  EXPECT_EQ((one >> 1), BigInt{});
  const BigInt a = BigInt::from_hex(kA);
  EXPECT_EQ(((a << 37) >> 37), a);
  EXPECT_EQ((a << 0), a);
  EXPECT_EQ((a >> 0), a);
  EXPECT_EQ((a >> 2000), BigInt{});  // shift past the top
  // Shift equals multiply by power of two.
  EXPECT_EQ(a << 32, a * BigInt::from_u64(1ULL << 32));
}

TEST(BigIntArith, SquaredMatchesMul) {
  const BigInt a = BigInt::from_hex(kA);
  EXPECT_EQ(a.squared(), a * a);
  EXPECT_EQ(BigInt{}.squared(), BigInt{});
  EXPECT_EQ(BigInt{3}.squared(), BigInt{9});
}

TEST(BigIntCompare, Ordering) {
  const BigInt a = BigInt::from_hex(kA);
  const BigInt b = BigInt::from_hex(kB);
  EXPECT_LT(b, a);
  EXPECT_GT(a, b);
  EXPECT_LT(-a, b);
  EXPECT_LT(-a, -b);
  EXPECT_EQ(a, a);
  EXPECT_LT(BigInt{}, BigInt{1});
  EXPECT_LT(BigInt{-1}, BigInt{});
}

TEST(BigIntBits, BitAccess) {
  const BigInt v = BigInt::from_hex("8000000000000001");
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(32));
  EXPECT_FALSE(v.bit(1000));
}

TEST(BigIntBits, BitsWindow) {
  const BigInt v = BigInt::from_hex("123456789abcdef0");
  EXPECT_EQ(v.bits_window(0, 4), 0x0u);
  EXPECT_EQ(v.bits_window(4, 4), 0xfu);
  EXPECT_EQ(v.bits_window(8, 8), 0xdeu);
  EXPECT_EQ(v.bits_window(28, 8), 0x89u);  // straddles the limb boundary
  EXPECT_EQ(v.bits_window(60, 4), 0x1u);
  EXPECT_EQ(v.bits_window(64, 8), 0x0u);  // past the top
  EXPECT_EQ(v.bits_window(0, 32), 0x9abcdef0u);
  EXPECT_THROW(v.bits_window(0, 33), std::invalid_argument);
}

TEST(BigIntModular, ModPowFixedVector) {
  const BigInt base = BigInt::from_hex(kBase);
  const BigInt e = BigInt::from_hex(kE);
  const BigInt m = BigInt::from_hex(kM);
  EXPECT_EQ(base.mod_pow(e, m).to_hex(), kModPow);
}

TEST(BigIntModular, ModPowEdgeCases) {
  const BigInt m{1000003};
  EXPECT_EQ(BigInt{5}.mod_pow(BigInt{}, m), BigInt{1});  // x^0 = 1
  EXPECT_EQ(BigInt{5}.mod_pow(BigInt{1}, m), BigInt{5});
  EXPECT_EQ(BigInt{}.mod_pow(BigInt{10}, m), BigInt{});  // 0^k = 0
  EXPECT_EQ(BigInt{5}.mod_pow(BigInt{3}, BigInt{1}), BigInt{});  // mod 1
  EXPECT_THROW(BigInt{2}.mod_pow(BigInt{-1}, m), std::domain_error);
  EXPECT_THROW(BigInt{2}.mod_pow(BigInt{3}, BigInt{}), std::domain_error);
}

TEST(BigIntModular, ModReturnsCanonicalResidue) {
  const BigInt m{7};
  EXPECT_EQ(BigInt{-1}.mod(m), BigInt{6});
  EXPECT_EQ(BigInt{-8}.mod(m), BigInt{6});
  EXPECT_EQ(BigInt{13}.mod(m), BigInt{6});
  EXPECT_THROW(BigInt{1}.mod(BigInt{-5}), std::domain_error);
}

TEST(BigIntModular, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt{12}, BigInt{18}), BigInt{6});
  EXPECT_EQ(BigInt::gcd(BigInt{-12}, BigInt{18}), BigInt{6});
  EXPECT_EQ(BigInt::gcd(BigInt{}, BigInt{5}), BigInt{5});
  EXPECT_EQ(BigInt::gcd(BigInt{17}, BigInt{13}), BigInt{1});
}

TEST(BigIntModular, ExtendedGcdBezout) {
  const BigInt a{240}, b{46};
  BigInt x, y;
  const BigInt g = BigInt::extended_gcd(a, b, x, y);
  EXPECT_EQ(g, BigInt{2});
  EXPECT_EQ(a * x + b * y, g);
}

TEST(BigIntModular, ModInverse) {
  const BigInt m{1000003};  // prime
  for (std::int64_t v : {2, 3, 999999, 12345}) {
    const BigInt inv = BigInt{v}.mod_inverse(m);
    EXPECT_EQ((BigInt{v} * inv).mod(m), BigInt{1});
  }
  EXPECT_THROW(BigInt{6}.mod_inverse(BigInt{12}), std::domain_error);
  EXPECT_THROW(BigInt{1}.mod_inverse(BigInt{1}), std::domain_error);
}

TEST(BigIntPrime, KnownSmallPrimes) {
  util::Rng rng(5);
  for (std::int64_t p : {2, 3, 5, 7, 97, 251, 65537, 1000003}) {
    EXPECT_TRUE(BigInt{p}.is_probable_prime(16, rng)) << p;
  }
  for (std::int64_t c : {0, 1, 4, 9, 91, 65536, 1000001}) {
    EXPECT_FALSE(BigInt{c}.is_probable_prime(16, rng)) << c;
  }
}

TEST(BigIntPrime, CarmichaelNumbersRejected) {
  util::Rng rng(6);
  // Carmichael numbers fool Fermat but not Miller–Rabin.
  for (std::int64_t c : {561, 1105, 1729, 2465, 2821, 6601, 8911, 41041}) {
    EXPECT_FALSE(BigInt{c}.is_probable_prime(16, rng)) << c;
  }
}

TEST(BigIntPrime, KnownLargePrime) {
  util::Rng rng(7);
  // 2^127 - 1 (Mersenne prime) and 2^128 + 51 (prime).
  const BigInt m127 = (BigInt{1} << 127) - BigInt{1};
  EXPECT_TRUE(m127.is_probable_prime(16, rng));
  const BigInt p128 = (BigInt{1} << 128) + BigInt{51};
  EXPECT_TRUE(p128.is_probable_prime(16, rng));
  // 2^128 + 1 = 59649589127497217 * 5704689200685129054721 (composite).
  const BigInt f7 = (BigInt{1} << 128) + BigInt{1};
  EXPECT_FALSE(f7.is_probable_prime(16, rng));
}

TEST(BigIntPrime, RandomPrimeShape) {
  util::Rng rng(8);
  const BigInt p = BigInt::random_prime(128, rng, 16);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.bit(126));  // second-highest bit forced
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(p.is_probable_prime(16, rng));
}

TEST(BigIntRandom, RandomBitsBounds) {
  util::Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    const BigInt v = BigInt::random_bits(257, rng);
    EXPECT_LE(v.bit_length(), 257u);
  }
  EXPECT_TRUE(BigInt::random_bits(0, rng).is_zero());
}

TEST(BigIntRandom, RandomBelowBounds) {
  util::Rng rng(10);
  const BigInt bound = BigInt::from_hex(kM);
  for (int i = 0; i < 50; ++i) {
    const BigInt v = BigInt::random_below(bound, rng);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.is_negative());
  }
  EXPECT_THROW(BigInt::random_below(BigInt{}, rng), std::invalid_argument);
}

TEST(BigIntRandom, RandomOddExactBits) {
  util::Rng rng(11);
  for (std::size_t bits : {2u, 17u, 64u, 129u, 512u}) {
    const BigInt v = BigInt::random_odd_exact_bits(bits, rng);
    EXPECT_EQ(v.bit_length(), bits);
    EXPECT_TRUE(v.is_odd());
  }
}

TEST(BigIntU64, ToU64) {
  EXPECT_EQ(BigInt::from_u64(0xdeadbeefcafef00dULL).to_u64(),
            0xdeadbeefcafef00dULL);
  EXPECT_EQ(BigInt{}.to_u64(), 0u);
  EXPECT_THROW(BigInt::from_hex(kA).to_u64(), std::overflow_error);
}

}  // namespace
}  // namespace phissl::bigint
