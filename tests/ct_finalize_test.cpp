// Finalize conditional-subtract edge tests.
//
// Every Montgomery context ends mul/sqr with a constant-time conditional
// subtract: the reduced value t lands in [0, 2m) and must come out as
// t mod m via a branch-free mask select. The mask logic has two classic
// failure shapes:
//
//   - the t >= m decision (top word | no-borrow) mis-evaluated at the
//     boundary t == m, t == m-1, or when the comparison borrow ripples
//     through a run of equal limbs;
//   - the subtraction borrow chain mishandled when it must propagate
//     across every limb (modulus limbs of 0xffffffff).
//
// Part 1 unit-tests the shared scalar32 kernel (s32::ct_sub_mod) directly
// with crafted (t, top, n) triples against a BigInt reference. Part 2
// drives all four production contexts (mont32/mont64/vector/batch)
// through mul/sqr over operand grids chosen to pin the finalize input to
// the boundary — x, y in {0, 1, 2, m-2, m-1, ...} with moduli shaped to
// maximize (all limbs 0xffffffff) and minimize (low limb 1) carry
// pressure — and checks bit-exact agreement with BigInt arithmetic.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "bigint/bigint.hpp"
#include "mont/batch.hpp"
#include "mont/mont32.hpp"
#include "mont/mont64.hpp"
#include "mont/scalar32_kernel.hpp"
#include "mont/vector_mont.hpp"
#include "util/random.hpp"

namespace phissl::mont {
namespace {

using bigint::BigInt;

BigInt from_words(const std::vector<std::uint32_t>& w, std::uint32_t top = 0) {
  std::vector<std::uint32_t> digits = w;
  digits.push_back(top);
  BigInt out;
  out.assign_from_digits(digits, 32);
  return out;
}

// Runs s32::ct_sub_mod on (t, top, n) and checks against the BigInt
// reference reduction. Precondition (kernel contract): t_full < 2n.
void check_ct_sub(const std::vector<std::uint32_t>& t, std::uint32_t top,
                  const std::vector<std::uint32_t>& n) {
  const BigInt tv = from_words(t, top);
  const BigInt nv = from_words(n);
  ASSERT_LT(tv, nv + nv) << "bad test input: t must be < 2n";
  std::vector<std::uint32_t> out;
  s32::ct_sub_mod(t.data(), top, n.data(), t.size(), out);
  BigInt expected = tv;
  if (tv >= nv) expected -= nv;
  EXPECT_EQ(from_words(out), expected)
      << "t=" << tv.to_hex() << " top=" << top << " n=" << nv.to_hex();
}

TEST(CtSubMod, AllOnesModulusBorrowChain) {
  // n = 2^128 - 1: every limb 0xffffffff, so the compare borrow and the
  // subtract borrow both ripple through all four limbs.
  const std::vector<std::uint32_t> n(4, 0xffffffffu);
  check_ct_sub({0, 0, 0, 0}, 0, n);                    // t = 0
  check_ct_sub({1, 0, 0, 0}, 0, n);                    // t = 1
  std::vector<std::uint32_t> t(4, 0xffffffffu);
  t[0] = 0xfffffffeu;
  check_ct_sub(t, 0, n);                               // t = n-1: no subtract
  check_ct_sub(n, 0, n);                               // t = n: exact -> 0
  check_ct_sub({0, 0, 0, 0}, 1, n);                    // t = 2^128 -> 1
  t[0] = 0xfffffffdu;
  check_ct_sub(t, 1, n);  // t = 2^128+n-2 = 2n-1 (max legal) -> n-1
}

TEST(CtSubMod, SparseModulusTopWordDecides) {
  // n = 2^96 + 1: interior limbs zero, so the t >= n decision hinges on
  // the top limb and the final borrow.
  const std::vector<std::uint32_t> n = {1, 0, 0, 1};
  check_ct_sub({0, 0, 0, 1}, 0, n);  // t = 2^96  = n-1: no subtract
  check_ct_sub({1, 0, 0, 1}, 0, n);  // t = n: exact -> 0
  check_ct_sub({2, 0, 0, 1}, 0, n);  // t = n+1 -> 1
  check_ct_sub({0, 0, 0, 2}, 0, n);  // t = 2^97 -> 2^96 - 1
  check_ct_sub({0xffffffffu, 0xffffffffu, 0xffffffffu, 1}, 0, n);
}

TEST(CtSubMod, SingleLimb) {
  const std::vector<std::uint32_t> n = {0xffffffffu};
  check_ct_sub({0xfffffffeu}, 0, n);  // n-1
  check_ct_sub({0xffffffffu}, 0, n);  // n -> 0
  check_ct_sub({0}, 1, n);            // 2^32 -> 1
  check_ct_sub({0xfffffffdu}, 1, n);  // 2^32 + n - 2 -> n - 1... one below 2n
}

TEST(CtSubMod, MidModulusRandomizedAgainstReference) {
  // Randomized sweep near the boundary: t drawn from [n-2, n+2] and
  // [2n-3, 2n) for random 6-limb odd moduli.
  util::Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    BigInt nv = BigInt::random_below(BigInt{1} << 192, rng);
    if (nv.is_zero()) continue;
    if ((nv.limbs()[0] & 1u) == 0) nv += BigInt{1};
    if (nv.bit_length() < 160) continue;  // keep 6 meaningful limbs
    const std::size_t len = 6;
    std::vector<std::uint32_t> n(len, 0);
    for (std::size_t i = 0; i < nv.limbs().size() && i < len; ++i) {
      n[i] = nv.limbs()[i];
    }
    for (int delta = -2; delta <= 2; ++delta) {
      BigInt tv = nv;
      if (delta < 0) tv -= BigInt{static_cast<std::uint32_t>(-delta)};
      if (delta > 0) tv += BigInt{static_cast<std::uint32_t>(delta)};
      std::vector<std::uint32_t> t(len + 1, 0);
      for (std::size_t i = 0; i < tv.limbs().size(); ++i) t[i] = tv.limbs()[i];
      const std::uint32_t top = t[len];
      t.resize(len);
      check_ct_sub(t, top, n);
    }
  }
}

// ---- Part 2: finalize edges through all four production contexts -------

// Operand grid hugging the reduction boundary for modulus m.
std::vector<BigInt> edge_values(const BigInt& m) {
  std::vector<BigInt> vals = {BigInt{}, BigInt{1}, BigInt{2}};
  BigInt v = m;
  v -= BigInt{1};
  vals.push_back(v);  // m-1
  v -= BigInt{1};
  vals.push_back(v);  // m-2
  util::Rng rng(77);
  vals.push_back(BigInt::random_below(m, rng));
  return vals;
}

// Moduli shaped to stress the finalize: dense limbs (2^k - small: the
// subtract fires often and borrows ripple), sparse limbs (2^k + 1), a
// single max limb, and a generic RSA-shaped odd modulus.
std::vector<BigInt> edge_moduli() {
  std::vector<BigInt> ms;
  BigInt dense = BigInt{1} << 256;
  dense -= BigInt{189};
  ms.push_back(dense);
  BigInt sparse = BigInt{1} << 224;
  sparse += BigInt{1};
  ms.push_back(sparse);
  ms.push_back(BigInt{0xffffffffu});
  util::Rng rng(31337);
  BigInt generic = BigInt::random_below(BigInt{1} << 192, rng);
  if ((generic.limbs()[0] & 1u) == 0) generic += BigInt{1};
  ms.push_back(generic);
  return ms;
}

template <typename Ctx>
void exercise_context_edges() {
  for (const BigInt& m : edge_moduli()) {
    const Ctx ctx(m);
    const std::vector<BigInt> vals = edge_values(m);
    for (const BigInt& a : vals) {
      const auto am = ctx.to_mont(a);
      typename Ctx::Rep out;
      ctx.sqr(am, out);
      EXPECT_EQ(ctx.from_mont(out), (a * a).mod(m))
          << "sqr a=" << a.to_hex() << " m=" << m.to_hex();
      for (const BigInt& b : vals) {
        const auto bm = ctx.to_mont(b);
        ctx.mul(am, bm, out);
        EXPECT_EQ(ctx.from_mont(out), (a * b).mod(m))
            << "mul a=" << a.to_hex() << " b=" << b.to_hex()
            << " m=" << m.to_hex();
      }
    }
  }
}

TEST(FinalizeEdges, Scalar32) { exercise_context_edges<MontCtx32>(); }
TEST(FinalizeEdges, Scalar64) { exercise_context_edges<MontCtx64>(); }
TEST(FinalizeEdges, Vector) { exercise_context_edges<VectorMontCtx>(); }

TEST(FinalizeEdges, Batch) {
  // 16 independent lanes: spread the edge grid across lanes so a single
  // mul exercises subtract-taken and subtract-not-taken lanes at once
  // (the per-lane masks in finalize_lanes must not bleed across lanes).
  for (const BigInt& m : edge_moduli()) {
    const BatchVectorMontCtx ctx(m);
    const std::vector<BigInt> vals = edge_values(m);
    std::array<BigInt, BatchVectorMontCtx::kBatch> as, bs;
    for (std::size_t lane = 0; lane < BatchVectorMontCtx::kBatch; ++lane) {
      as[lane] = vals[lane % vals.size()];
      bs[lane] = vals[(lane / vals.size()) % vals.size()];
    }
    const auto am = ctx.to_mont(as);
    const auto bm = ctx.to_mont(bs);
    BatchVectorMontCtx::Rep out;
    ctx.mul(am, bm, out);
    auto products = ctx.from_mont(out);
    for (std::size_t lane = 0; lane < BatchVectorMontCtx::kBatch; ++lane) {
      EXPECT_EQ(products[lane], (as[lane] * bs[lane]).mod(m))
          << "lane " << lane << " m=" << m.to_hex();
    }
    ctx.sqr(am, out);
    auto squares = ctx.from_mont(out);
    for (std::size_t lane = 0; lane < BatchVectorMontCtx::kBatch; ++lane) {
      EXPECT_EQ(squares[lane], (as[lane] * as[lane]).mod(m))
          << "lane " << lane << " m=" << m.to_hex();
    }
  }
}

}  // namespace
}  // namespace phissl::mont
