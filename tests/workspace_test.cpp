// Zero-allocation property of the workspace-threaded RSA paths.
//
// The global operator new/delete pair below counts every heap allocation in
// the test binary. After a warm-up call (which sizes the per-thread
// workspaces for the key in use), Engine::private_op_into and
// BatchEngine::private_op must perform zero heap allocations per call —
// the property the ExpWorkspace / kernel-workspace design exists to
// provide.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "bigint/bigint.hpp"
#include "rsa/batch_engine.hpp"
#include "rsa/engine.hpp"
#include "rsa/key.hpp"
#include "util/random.hpp"

namespace {
std::atomic<std::size_t> g_alloc_count{0};

std::size_t alloc_count() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t n, std::align_val_t al) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_alloc(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace phissl::rsa {
namespace {

using bigint::BigInt;

TEST(Workspace, EngineCrtPrivateOpIsAllocationFreeAfterWarmup) {
  const PrivateKey& key = test_key(1024);
  util::Rng rng(31);
  for (Kernel k : {Kernel::kScalar32, Kernel::kScalar64, Kernel::kVector}) {
    for (Schedule sched : {Schedule::kFixedWindow, Schedule::kSlidingWindow}) {
      EngineOptions opts;
      opts.kernel = k;
      opts.schedule = sched;
      opts.use_crt = true;
      opts.blinding = false;
      const Engine eng(key, opts);

      std::vector<BigInt> xs;
      for (int i = 0; i < 4; ++i) {
        xs.push_back(BigInt::random_below(key.pub.n, rng));
      }
      BigInt out;
      // Two warm-up calls size every per-thread workspace and give `out`
      // its full capacity.
      eng.private_op_into(xs[0], out);
      eng.private_op_into(xs[1], out);

      const std::size_t before = alloc_count();
      for (const BigInt& x : xs) {
        eng.private_op_into(x, out);
      }
      const std::size_t after = alloc_count();
      EXPECT_EQ(after - before, 0u)
          << to_string(k) << "/" << to_string(sched);
      // Correctness of the final measured call, checked outside the
      // measured region.
      EXPECT_EQ(out, eng.private_op(xs.back()))
          << to_string(k) << "/" << to_string(sched);
    }
  }
}

TEST(Workspace, BatchEnginePrivateOpIsAllocationFreeAfterWarmup) {
  const PrivateKey& key = test_key(1024);
  const BatchEngine batch(key);
  util::Rng rng(32);
  std::array<BigInt, BatchEngine::kBatch> xs, out;
  for (auto& x : xs) x = BigInt::random_below(key.pub.n, rng);

  batch.private_op(xs, out);
  batch.private_op(xs, out);  // warm-up

  const std::size_t before = alloc_count();
  for (int i = 0; i < 3; ++i) {
    batch.private_op(xs, out);
  }
  const std::size_t after = alloc_count();
  EXPECT_EQ(after - before, 0u);

  const Engine scalar(key, EngineOptions{});
  for (std::size_t l = 0; l < BatchEngine::kBatch; ++l) {
    EXPECT_EQ(out[l], scalar.private_op(xs[l])) << l;
  }
}

TEST(Workspace, AllocationCounterSeesHeapTraffic) {
  // Sanity-check the instrument itself: a vector growth must be counted.
  const std::size_t before = alloc_count();
  std::vector<std::uint64_t>* v = new std::vector<std::uint64_t>(1024);
  delete v;
  const std::size_t after = alloc_count();
  EXPECT_GE(after - before, 1u);
}

}  // namespace
}  // namespace phissl::rsa
