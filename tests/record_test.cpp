// TLS 1.2 record layer tests: key derivation, duplex sessions, sequence
// discipline, tampering, truncation, and cross-side key agreement.
#include <gtest/gtest.h>

#include <stdexcept>

#include "ssl/gcm_record.hpp"
#include "ssl/record.hpp"
#include "util/random.hpp"

namespace phissl::ssl {
namespace {

class RecordTest : public ::testing::Test {
 protected:
  RecordTest() {
    rng_.fill_bytes(master_.data(), master_.size());
    rng_.fill_bytes(client_random_.data(), client_random_.size());
    rng_.fill_bytes(server_random_.data(), server_random_.size());
    keys_ = derive_session_keys(master_, client_random_, server_random_);
  }

  util::Rng rng_{77};
  MasterSecret master_{};
  Random client_random_{};
  Random server_random_{};
  SessionKeys keys_{};
};

TEST_F(RecordTest, KeyDerivationDeterministicAndDistinct) {
  const auto again = derive_session_keys(master_, client_random_, server_random_);
  EXPECT_EQ(again.client_mac_key, keys_.client_mac_key);
  EXPECT_EQ(again.server_enc_key, keys_.server_enc_key);
  EXPECT_NE(keys_.client_mac_key, keys_.server_mac_key);
  EXPECT_NE(keys_.client_enc_key, keys_.server_enc_key);
  // Different randoms -> different keys.
  Random other = client_random_;
  other[0] ^= 1;
  const auto diff = derive_session_keys(master_, other, server_random_);
  EXPECT_NE(diff.client_enc_key, keys_.client_enc_key);
}

TEST_F(RecordTest, DuplexRoundTrip) {
  Session client(keys_, /*is_server=*/false);
  Session server(keys_, /*is_server=*/true);

  const std::vector<std::uint8_t> req = {'G', 'E', 'T', ' ', '/'};
  const auto wire1 = client.send(req, rng_);
  const auto got1 = server.receive(wire1);
  ASSERT_TRUE(got1.has_value());
  EXPECT_EQ(*got1, req);

  const std::vector<std::uint8_t> resp(500, 0x42);
  const auto wire2 = server.send(resp, rng_);
  const auto got2 = client.receive(wire2);
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(*got2, resp);
}

TEST_F(RecordTest, ManyRecordsKeepSequence) {
  Session client(keys_, false);
  Session server(keys_, true);
  for (int i = 0; i < 50; ++i) {
    const std::vector<std::uint8_t> msg(static_cast<std::size_t>(i) + 1,
                                        static_cast<std::uint8_t>(i));
    const auto wire = client.send(msg, rng_);
    const auto got = server.receive(wire);
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, msg) << i;
  }
}

TEST_F(RecordTest, ReplayRejected) {
  Session client(keys_, false);
  Session server(keys_, true);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  const auto wire = client.send(msg, rng_);
  ASSERT_TRUE(server.receive(wire).has_value());
  // Same record again: the receiver's sequence number advanced, so the
  // MAC (which covers the sequence number) no longer verifies.
  EXPECT_FALSE(server.receive(wire).has_value());
}

TEST_F(RecordTest, ReorderRejected) {
  Session client(keys_, false);
  Session server(keys_, true);
  const auto first = client.send(std::vector<std::uint8_t>{1}, rng_);
  const auto second = client.send(std::vector<std::uint8_t>{2}, rng_);
  EXPECT_FALSE(server.receive(second).has_value());  // out of order
  EXPECT_TRUE(server.receive(first).has_value());
}

TEST_F(RecordTest, TamperingRejected) {
  Session client(keys_, false);
  const std::vector<std::uint8_t> msg(64, 0x5a);
  const auto wire = client.send(msg, rng_);
  for (std::size_t pos : {std::size_t{0}, kIvSize, wire.size() - 1}) {
    Session server(keys_, true);
    auto bad = wire;
    bad[pos] ^= 0x01;
    EXPECT_FALSE(server.receive(bad).has_value()) << pos;
  }
}

TEST_F(RecordTest, TruncationRejected) {
  Session client(keys_, false);
  Session server(keys_, true);
  auto wire = client.send(std::vector<std::uint8_t>(40, 1), rng_);
  wire.resize(wire.size() - 16);  // drop a whole block
  EXPECT_FALSE(server.receive(wire).has_value());
  EXPECT_FALSE(server.receive(std::vector<std::uint8_t>(5, 0)).has_value());
}

TEST_F(RecordTest, DirectionKeysNotInterchangeable) {
  Session client1(keys_, false);
  Session client2(keys_, false);
  // A client cannot open a record another client sealed (it decrypts with
  // the SERVER write keys).
  const auto wire = client1.send(std::vector<std::uint8_t>{9}, rng_);
  EXPECT_FALSE(client2.receive(wire).has_value());
}

TEST_F(RecordTest, WrongContentTypeRejected) {
  RecordChannel sender(keys_.client_enc_key, keys_.client_mac_key);
  RecordChannel receiver(keys_.client_enc_key, keys_.client_mac_key);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  const auto wire = sender.seal(kContentApplicationData, msg, rng_);
  EXPECT_FALSE(receiver.open(22, wire).has_value());  // handshake type
}

TEST_F(RecordTest, EmptyPayloadAllowed) {
  Session client(keys_, false);
  Session server(keys_, true);
  const auto wire = client.send({}, rng_);
  const auto got = server.receive(wire);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST_F(RecordTest, PaddingAndMacFailuresIndistinguishable) {
  // Vaudenay regression: a receiver must reject a record whose CBC
  // padding was corrupted the same way it rejects one whose padding is
  // intact but whose MAC fails — one signal, one code path. A 16-byte
  // plaintext + 32-byte MAC pads with a full block (pad = 16), so
  // flipping the last byte of the LAST ciphertext block corrupts the pad
  // itself, while flipping an IV byte garbles only plaintext byte 0 and
  // leaves the padding valid (MAC failure). Both must read as nullopt.
  RecordChannel sender(keys_.client_enc_key, keys_.client_mac_key);
  const std::vector<std::uint8_t> msg(16, 0x11);
  const auto wire = sender.seal(kContentApplicationData, msg, rng_);

  auto pad_corrupt = wire;
  pad_corrupt.back() ^= 0x01;  // hits the padding block
  RecordChannel r1(keys_.client_enc_key, keys_.client_mac_key);
  EXPECT_EQ(r1.open(kContentApplicationData, pad_corrupt), std::nullopt);

  auto mac_fail = wire;
  mac_fail[0] ^= 0x01;  // IV bit flip: padding stays valid, MAC fails
  RecordChannel r2(keys_.client_enc_key, keys_.client_mac_key);
  EXPECT_EQ(r2.open(kContentApplicationData, mac_fail), std::nullopt);

  // Neither failure advanced the sequence: the intact record still opens.
  EXPECT_TRUE(r1.open(kContentApplicationData, wire).has_value());
  EXPECT_TRUE(r2.open(kContentApplicationData, wire).has_value());
}

TEST_F(RecordTest, TooShortForMacRejectedBeforeDecryption) {
  // 2 ciphertext blocks (32 bytes) can never hold MAC + >=1 pad byte;
  // the public length check must reject them so the MAC-always-runs
  // invariant never sees an undersized buffer.
  RecordChannel receiver(keys_.client_enc_key, keys_.client_mac_key);
  std::vector<std::uint8_t> runt(kIvSize + 32, 0);
  EXPECT_FALSE(receiver.open(kContentApplicationData, runt).has_value());
  EXPECT_EQ(receiver.open_seq(), 0u);
}

TEST_F(RecordTest, SequenceExhaustionFailsClosed) {
  RecordChannel sender(keys_.client_enc_key, keys_.client_mac_key);
  RecordChannel receiver(keys_.client_enc_key, keys_.client_mac_key);
  const std::vector<std::uint8_t> msg = {1, 2, 3};

  // One from the limit: the last usable sequence number still works.
  sender.seq_override_for_testing(RecordChannel::kSeqLimit - 1, 0);
  receiver.seq_override_for_testing(0, RecordChannel::kSeqLimit - 1);
  const auto last = sender.seal(kContentApplicationData, msg, rng_);
  EXPECT_EQ(sender.seal_seq(), RecordChannel::kSeqLimit);
  const auto got = receiver.open(kContentApplicationData, last);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, msg);
  EXPECT_EQ(receiver.open_seq(), RecordChannel::kSeqLimit);

  // At the limit: seal fails closed (throws), open fails closed
  // (nullopt), and neither counter wraps back to reusable values.
  EXPECT_THROW(sender.seal(kContentApplicationData, msg, rng_),
               std::runtime_error);
  EXPECT_EQ(sender.seal_seq(), RecordChannel::kSeqLimit);
  EXPECT_FALSE(receiver.open(kContentApplicationData, last).has_value());
  EXPECT_EQ(receiver.open_seq(), RecordChannel::kSeqLimit);
}

}  // namespace
}  // namespace phissl::ssl

namespace phissl::ssl {
namespace {

class GcmRecordTest : public ::testing::Test {
 protected:
  GcmRecordTest() {
    util::Rng rng(88);
    key_ = rng.bytes(GcmRecordChannel::kKeySize);
    salt_ = rng.bytes(GcmRecordChannel::kSaltSize);
  }
  std::vector<std::uint8_t> key_, salt_;
};

TEST_F(GcmRecordTest, RoundTripAndSequenceDiscipline) {
  GcmRecordChannel sender(key_, salt_);
  GcmRecordChannel receiver(key_, salt_);
  for (int i = 0; i < 20; ++i) {
    const std::vector<std::uint8_t> msg(static_cast<std::size_t>(i) + 1,
                                        static_cast<std::uint8_t>(i));
    const auto wire = sender.seal(kContentApplicationData, msg);
    const auto got = receiver.open(kContentApplicationData, wire);
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, msg) << i;
  }
}

TEST_F(GcmRecordTest, ReplayTamperAndTypeRejected) {
  GcmRecordChannel sender(key_, salt_);
  GcmRecordChannel receiver(key_, salt_);
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4};
  const auto wire = sender.seal(kContentApplicationData, msg);
  ASSERT_TRUE(receiver.open(kContentApplicationData, wire).has_value());
  // Replay: receiver sequence advanced -> AAD mismatch.
  EXPECT_FALSE(receiver.open(kContentApplicationData, wire).has_value());
  // Tamper.
  GcmRecordChannel receiver2(key_, salt_);
  auto bad = wire;
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(receiver2.open(kContentApplicationData, bad).has_value());
  // Wrong content type (AAD covers it).
  GcmRecordChannel receiver3(key_, salt_);
  EXPECT_FALSE(receiver3.open(22, wire).has_value());
  // Truncation.
  EXPECT_FALSE(receiver3
                   .open(kContentApplicationData,
                         std::vector<std::uint8_t>(5, 0))
                   .has_value());
}

TEST_F(GcmRecordTest, GcmRecordsSmallerThanCbc) {
  // AEAD overhead (8B nonce + 16B tag) < CBC overhead (16B IV + 32B MAC
  // + padding): the reason TLS moved to GCM.
  GcmRecordChannel gcm(key_, salt_);
  const std::vector<std::uint8_t> msg(100, 0x7);
  const auto gcm_wire = gcm.seal(kContentApplicationData, msg);
  EXPECT_EQ(gcm_wire.size(), 100u + 8u + 16u);
}

TEST_F(GcmRecordTest, RejectsBadKeyOrSalt) {
  EXPECT_THROW(GcmRecordChannel(std::vector<std::uint8_t>(8), salt_),
               std::invalid_argument);
  EXPECT_THROW(GcmRecordChannel(key_, std::vector<std::uint8_t>(3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace phissl::ssl
