// Tests for the named baseline system presets.
#include <gtest/gtest.h>

#include <string>

#include "baseline/systems.hpp"
#include "rsa/key.hpp"
#include "util/random.hpp"

namespace phissl::baseline {
namespace {

TEST(Systems, NamesAreDistinct) {
  EXPECT_STREQ(name(System::kPhiOpenSSL), "PhiOpenSSL");
  EXPECT_STREQ(name(System::kMpssLibcrypto), "MPSS-libcrypto");
  EXPECT_STREQ(name(System::kOpensslDefault), "OpenSSL-default");
}

TEST(Systems, PresetsMatchPaperDescription) {
  const auto phi = options_for(System::kPhiOpenSSL);
  EXPECT_EQ(phi.kernel, rsa::Kernel::kVector);
  EXPECT_EQ(phi.schedule, rsa::Schedule::kFixedWindow);
  EXPECT_TRUE(phi.use_crt);

  const auto mpss = options_for(System::kMpssLibcrypto);
  EXPECT_EQ(mpss.kernel, rsa::Kernel::kScalar32);
  EXPECT_EQ(mpss.schedule, rsa::Schedule::kSlidingWindow);

  const auto ossl = options_for(System::kOpensslDefault);
  EXPECT_EQ(ossl.kernel, rsa::Kernel::kScalar64);
  EXPECT_EQ(ossl.schedule, rsa::Schedule::kSlidingWindow);
}

TEST(Systems, AllSystemsInterop) {
  // Signature from any system verifies under any other (same key => same
  // math), proving the presets only differ in implementation strategy.
  const rsa::PrivateKey& key = rsa::test_key(512);
  util::Rng rng(5);
  const bigint::BigInt m = bigint::BigInt::random_below(key.pub.n, rng);
  bigint::BigInt first;
  bool have_first = false;
  for (const System s : all_systems()) {
    const rsa::Engine engine = make_engine(s, key);
    const bigint::BigInt sig = engine.private_op(m);
    if (!have_first) {
      first = sig;
      have_first = true;
    } else {
      EXPECT_EQ(sig, first) << name(s);
    }
    EXPECT_EQ(engine.public_op(sig), m) << name(s);
  }
}

TEST(Systems, PublicEngineWorks) {
  const rsa::PrivateKey& key = rsa::test_key(512);
  const rsa::Engine pub_engine =
      make_public_engine(System::kPhiOpenSSL, key.pub);
  EXPECT_FALSE(pub_engine.has_private());
  const rsa::Engine full = make_engine(System::kPhiOpenSSL, key);
  const bigint::BigInt sig = full.private_op(bigint::BigInt{12345});
  EXPECT_EQ(pub_engine.public_op(sig), bigint::BigInt{12345});
}

}  // namespace
}  // namespace phissl::baseline
