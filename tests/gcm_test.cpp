// AES-GCM tests against NIST / cryptography-library vectors, round trips,
// and authentication failure injection.
#include <gtest/gtest.h>

#include "util/gcm.hpp"
#include "util/hex.hpp"
#include "util/random.hpp"

namespace phissl::util {
namespace {

std::vector<std::uint8_t> H(const char* hex) { return hex_decode(hex); }

TEST(AesGcm, NistCase1EmptyEverything) {
  // Zero key, zero nonce, empty pt/aad: tag only.
  const AesGcm gcm(std::vector<std::uint8_t>(16, 0));
  const auto out = gcm.seal(std::vector<std::uint8_t>(12, 0), {}, {});
  EXPECT_EQ(hex_encode(out), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(AesGcm, NistCase4WithAad) {
  const AesGcm gcm(H("feffe9928665731c6d6a8f9467308308"));
  const auto nonce = H("cafebabefacedbaddecaf888");
  const auto pt = H(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const auto aad = H("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const auto out = gcm.seal(nonce, pt, aad);
  EXPECT_EQ(hex_encode(out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(AesGcm, KnownVectorSmall) {
  // Cross-checked with the Python `cryptography` library.
  std::vector<std::uint8_t> key(16);
  for (std::size_t i = 0; i < 16; ++i) key[i] = static_cast<std::uint8_t>(i);
  const AesGcm gcm(key);
  const std::string pt = "hello gcm world!";
  const std::string aad = "header";
  const auto out = gcm.seal(
      std::vector<std::uint8_t>(12, 0),
      {reinterpret_cast<const std::uint8_t*>(pt.data()), pt.size()},
      {reinterpret_cast<const std::uint8_t*>(aad.data()), aad.size()});
  EXPECT_EQ(hex_encode(out),
            "21b3eb3ff6bbc1ef8ea90d0712edd4bcecc30a62e920d749f70e4cded744cee5");
}

TEST(AesGcm, RoundTripVariousLengths) {
  Rng rng(1);
  const AesGcm gcm(rng.bytes(32));  // AES-256 path
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 256u}) {
    const auto nonce = rng.bytes(12);
    const auto pt = rng.bytes(len);
    const auto aad = rng.bytes(len % 7);
    const auto sealed = gcm.seal(nonce, pt, aad);
    EXPECT_EQ(sealed.size(), len + AesGcm::kTagSize);
    const auto opened = gcm.open(nonce, sealed, aad);
    ASSERT_TRUE(opened.has_value()) << len;
    EXPECT_EQ(*opened, pt) << len;
  }
}

TEST(AesGcm, TamperingRejected) {
  Rng rng(2);
  const AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  const auto pt = rng.bytes(48);
  auto sealed = gcm.seal(nonce, pt);
  for (std::size_t pos : {std::size_t{0}, sealed.size() / 2,
                          sealed.size() - 1}) {
    auto bad = sealed;
    bad[pos] ^= 1;
    EXPECT_FALSE(gcm.open(nonce, bad).has_value()) << pos;
  }
}

TEST(AesGcm, WrongAadOrNonceRejected) {
  Rng rng(3);
  const AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  const auto pt = rng.bytes(20);
  const auto aad = rng.bytes(10);
  const auto sealed = gcm.seal(nonce, pt, aad);
  EXPECT_FALSE(gcm.open(nonce, sealed, rng.bytes(10)).has_value());
  EXPECT_FALSE(gcm.open(rng.bytes(12), sealed, aad).has_value());
  EXPECT_TRUE(gcm.open(nonce, sealed, aad).has_value());
}

TEST(AesGcm, TruncatedInputRejected) {
  Rng rng(4);
  const AesGcm gcm(rng.bytes(16));
  const auto nonce = rng.bytes(12);
  auto sealed = gcm.seal(nonce, rng.bytes(5));
  sealed.resize(AesGcm::kTagSize - 1);  // shorter than a tag
  EXPECT_FALSE(gcm.open(nonce, sealed).has_value());
  EXPECT_THROW(gcm.seal(rng.bytes(11), {}), std::invalid_argument);
}

TEST(Ghash, LinearInBlocks) {
  // GHASH over all-zero data is zero regardless of H.
  Block128 h{};
  h[0] = 0x42;
  std::vector<std::uint8_t> zeros(32, 0);
  const Block128 y = ghash(h, zeros);
  for (const auto b : y) EXPECT_EQ(b, 0);
  EXPECT_THROW(ghash(h, std::vector<std::uint8_t>(5)), std::invalid_argument);
}

}  // namespace
}  // namespace phissl::util
