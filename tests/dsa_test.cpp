// DSA tests: parameter generation, sign/verify round trip across kernels,
// tampering and range rejection.
#include <gtest/gtest.h>

#include <string_view>

#include "dh/dsa.hpp"
#include "util/random.hpp"

namespace phissl::dsa {
namespace {

using bigint::BigInt;

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

class DsaTest : public ::testing::Test {
 protected:
  static const Params& shared_params() {
    static const Params params = [] {
      util::Rng rng(404);
      return generate_params(512, 160, rng);
    }();
    return params;
  }

  util::Rng rng_{405};
};

TEST_F(DsaTest, GeneratedParametersWellFormed) {
  const Params& p = shared_params();
  EXPECT_EQ(p.p.bit_length(), 512u);
  EXPECT_EQ(p.q.bit_length(), 160u);
  EXPECT_TRUE(((p.p - BigInt{1}) % p.q).is_zero());
  // g has order q: g^q == 1, g != 1.
  EXPECT_FALSE(p.g.is_one());
  EXPECT_EQ(p.g.mod_pow(p.q, p.p), BigInt{1});
}

TEST_F(DsaTest, SignVerifyRoundTrip) {
  const Dsa dsa(shared_params());
  const KeyPair kp = dsa.generate_keypair(rng_);
  const Signature sig = dsa.sign(bytes_of("hello dsa"), kp.x, rng_);
  EXPECT_TRUE(dsa.verify(bytes_of("hello dsa"), sig, kp.y));
  EXPECT_FALSE(dsa.verify(bytes_of("hello dsb"), sig, kp.y));
}

TEST_F(DsaTest, AllKernelsInteroperate) {
  // Signature produced with one kernel verifies under any other.
  const KeyPair kp = Dsa(shared_params()).generate_keypair(rng_);
  for (const rsa::Kernel ks :
       {rsa::Kernel::kScalar32, rsa::Kernel::kScalar64, rsa::Kernel::kVector}) {
    const Dsa signer(shared_params(), ks);
    const Signature sig = signer.sign(bytes_of("interop"), kp.x, rng_);
    for (const rsa::Kernel kv :
         {rsa::Kernel::kScalar32, rsa::Kernel::kScalar64, rsa::Kernel::kVector}) {
      const Dsa verifier(shared_params(), kv);
      EXPECT_TRUE(verifier.verify(bytes_of("interop"), sig, kp.y));
    }
  }
}

TEST_F(DsaTest, TamperedSignatureRejected) {
  const Dsa dsa(shared_params());
  const KeyPair kp = dsa.generate_keypair(rng_);
  Signature sig = dsa.sign(bytes_of("msg"), kp.x, rng_);
  Signature bad = sig;
  bad.r += BigInt{1};
  EXPECT_FALSE(dsa.verify(bytes_of("msg"), bad, kp.y));
  bad = sig;
  bad.s += BigInt{1};
  EXPECT_FALSE(dsa.verify(bytes_of("msg"), bad, kp.y));
}

TEST_F(DsaTest, OutOfRangeValuesRejected) {
  const Dsa dsa(shared_params());
  const KeyPair kp = dsa.generate_keypair(rng_);
  const Signature sig = dsa.sign(bytes_of("msg"), kp.x, rng_);
  EXPECT_FALSE(dsa.verify(bytes_of("msg"), {BigInt{}, sig.s}, kp.y));
  EXPECT_FALSE(dsa.verify(bytes_of("msg"), {sig.r, BigInt{}}, kp.y));
  EXPECT_FALSE(
      dsa.verify(bytes_of("msg"), {shared_params().q, sig.s}, kp.y));
  EXPECT_FALSE(dsa.verify(bytes_of("msg"), sig, BigInt{1}));  // bad y
}

TEST_F(DsaTest, WrongKeyRejected) {
  const Dsa dsa(shared_params());
  const KeyPair kp1 = dsa.generate_keypair(rng_);
  const KeyPair kp2 = dsa.generate_keypair(rng_);
  const Signature sig = dsa.sign(bytes_of("msg"), kp1.x, rng_);
  EXPECT_FALSE(dsa.verify(bytes_of("msg"), sig, kp2.y));
}

TEST_F(DsaTest, SignaturesAreRandomized) {
  const Dsa dsa(shared_params());
  const KeyPair kp = dsa.generate_keypair(rng_);
  const Signature s1 = dsa.sign(bytes_of("msg"), kp.x, rng_);
  const Signature s2 = dsa.sign(bytes_of("msg"), kp.x, rng_);
  EXPECT_NE(s1.r, s2.r);  // fresh k per signature
  EXPECT_TRUE(dsa.verify(bytes_of("msg"), s1, kp.y));
  EXPECT_TRUE(dsa.verify(bytes_of("msg"), s2, kp.y));
}

TEST_F(DsaTest, RejectsInvalidParams) {
  Params bad = shared_params();
  bad.q += BigInt{2};  // q no longer divides p-1
  EXPECT_THROW(Dsa{bad}, std::invalid_argument);
}

}  // namespace
}  // namespace phissl::dsa
