"""Fixture-backed unit tests for phissl_lint: one positive (rule fires),
one suppressed, and one negative case per rule, on synthetic repo trees."""

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from phissl_lint import run_lint  # noqa: E402


class LintFixture(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        (self.root / "src").mkdir()
        (self.root / "tests").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def write(self, rel, content):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content)
        # Keep BLD001 quiet unless a test targets it: register every .cpp
        # we create in a CMakeLists alongside it.
        if path.suffix == ".cpp":
            cml = path.parent / "CMakeLists.txt"
            existing = cml.read_text() if cml.exists() else ""
            cml.write_text(existing + path.name + "\n")
        return path

    def rules(self):
        return [f.rule for f in run_lint(self.root)]


class MemcmpRule(LintFixture):
    def test_memcmp_in_secret_dir_fires(self):
        self.write("src/rsa/sig.cpp",
                   "bool ok = memcmp(a, b, n) == 0;\n")
        self.assertIn("CT001", self.rules())

    def test_memcmp_suppressed(self):
        self.write("src/rsa/sig.cpp",
                   "bool ok = memcmp(a, b, n) == 0;  // lint:allow(memcmp)\n")
        self.assertNotIn("CT001", self.rules())

    def test_memcmp_outside_secret_dirs_ignored(self):
        self.write("src/util/misc.cpp", "int r = memcmp(a, b, n);\n")
        self.assertNotIn("CT001", self.rules())

    def test_memcmp_in_comment_ignored(self):
        self.write("src/rsa/sig.cpp", "// never use memcmp(a, b, n) here\n")
        self.assertNotIn("CT001", self.rules())

    def test_named_function_not_confused(self):
        self.write("src/rsa/sig.cpp", "int r = ct_memcmp(a, b, n);\n")
        self.assertNotIn("CT001", self.rules())


class SecretIndexRule(LintFixture):
    MARKER = "// phissl:ct-kernel\n"

    def test_index_value_in_marked_file_fires(self):
        self.write("src/mont/kern.hpp",
                   self.MARKER + "auto x = table[index_value(idx)];\n")
        self.assertIn("CT002", self.rules())

    def test_unmarked_file_ignored(self):
        self.write("src/mont/kern.hpp",
                   "auto x = table[index_value(idx)];\n")
        self.assertNotIn("CT002", self.rules())

    def test_declassify_region_exempt(self):
        self.write("src/mont/kern.hpp",
                   self.MARKER +
                   "ct::DeclassifyScope blinded;\n"
                   "auto x = table[index_value(idx)];\n")
        self.assertNotIn("CT002", self.rules())

    def test_after_declassify_region_fires(self):
        self.write("src/mont/kern.hpp",
                   self.MARKER +
                   "ct::DeclassifyScope blinded;\n"
                   "// lint:end-declassify\n"
                   "auto x = table[index_value(idx)];\n")
        self.assertIn("CT002", self.rules())

    def test_suppression(self):
        self.write(
            "src/mont/kern.hpp", self.MARKER +
            "auto x = table[index_value(i)];  // lint:allow(secret-index)\n")
        self.assertNotIn("CT002", self.rules())

    def test_leaky_fixture_allowlisted(self):
        self.write("src/ct/leaky.hpp",
                   self.MARKER + "auto x = table[index_value(idx)];\n")
        self.assertNotIn("CT002", self.rules())


class SecureWipeRule(LintFixture):
    def test_memset_in_wipe_dir_fires(self):
        self.write("src/rsa/key.cpp", "memset(d.data(), 0, d.size());\n")
        self.assertIn("SEC001", self.rules())

    def test_bzero_fires(self):
        self.write("src/ssl/record.cpp", "bzero(key, sizeof key);\n")
        self.assertIn("SEC001", self.rules())

    def test_memset_outside_wipe_dirs_ignored(self):
        # src/mont is a SECRET_DIR (CT001) but not a WIPE_DIR: workspace
        # zeroing there is algorithmic, not scrubbing.
        self.write("src/mont/ws.cpp", "memset(acc, 0, n);\n")
        self.write("src/util/buf.cpp", "memset(p, 0, n);\n")
        self.assertNotIn("SEC001", self.rules())

    def test_suppressed(self):
        self.write("src/rsa/key.cpp",
                   "memset(pub, 0, n);  // lint:allow(memset)\n")
        self.assertNotIn("SEC001", self.rules())

    def test_comment_and_named_function_ignored(self):
        self.write("src/rsa/key.cpp",
                   "// memset(d, 0, n) would be elided here\n"
                   "util::secure_memset_like(p, n);\n")
        self.assertNotIn("SEC001", self.rules())


class RandRule(LintFixture):
    def test_rand_fires(self):
        self.write("src/util/seed.cpp", "int x = rand();\n")
        self.assertIn("RNG001", self.rules())

    def test_srand_fires(self):
        self.write("src/util/seed.cpp", "srand(42);\n")
        self.assertIn("RNG001", self.rules())

    def test_member_rand_ignored(self):
        self.write("src/util/seed.cpp",
                   "auto x = rng.rand();\nauto y = util::rand();\n")
        self.assertNotIn("RNG001", self.rules())

    def test_suppressed(self):
        self.write("src/util/seed.cpp",
                   "int x = rand();  // lint:allow(rand)\n")
        self.assertNotIn("RNG001", self.rules())


class RegistrationRule(LintFixture):
    def test_unregistered_cpp_fires(self):
        d = self.root / "src" / "mont"
        d.mkdir(parents=True)
        (d / "CMakeLists.txt").write_text("add_library(m other.cpp)\n")
        (d / "orphan.cpp").write_text("int f();\n")
        findings = run_lint(self.root)
        self.assertIn("BLD001", [f.rule for f in findings])
        self.assertIn("src/mont/orphan.cpp", [f.path for f in findings])

    def test_registered_cpp_clean(self):
        self.write("src/mont/mont32.cpp", "int f();\n")
        self.assertNotIn("BLD001", self.rules())

    def test_unregistered_test_fires(self):
        (self.root / "tests" / "CMakeLists.txt").write_text("# none\n")
        (self.root / "tests" / "foo_test.cpp").write_text("int f();\n")
        self.assertIn("BLD001", self.rules())

    def test_dir_without_cmakelists_skipped(self):
        d = self.root / "src" / "experimental"
        d.mkdir(parents=True)
        (d / "scratch.cpp").write_text("int f();\n")
        self.assertNotIn("BLD001", self.rules())


class SelfCheck(unittest.TestCase):
    def test_real_repo_is_clean(self):
        repo = Path(__file__).resolve().parent.parent
        findings = run_lint(repo)
        self.assertEqual([], [str(f) for f in findings])


if __name__ == "__main__":
    unittest.main()
