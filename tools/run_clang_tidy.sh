#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over src/ using a
# compile_commands.json from a dedicated build directory.
#
# Usage: tools/run_clang_tidy.sh [path ...]
#   With no arguments, checks every .cpp under src/. Pass paths to narrow.
#
# Degrades gracefully: exits 0 with a notice when clang-tidy is not
# installed (the containerized CI base image only carries gcc), so the
# same entry point works locally and in CI without gating logic.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${ROOT}/build-tidy"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (install" \
       "clang-tools to enable)." >&2
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  cmake -S "${ROOT}" -B "${BUILD_DIR}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
    -DPHISSL_BUILD_BENCH=OFF -DPHISSL_BUILD_EXAMPLES=OFF \
    > /dev/null
fi

if [[ $# -gt 0 ]]; then
  FILES=("$@")
else
  mapfile -t FILES < <(find "${ROOT}/src" -name '*.cpp' | sort)
fi

echo "run_clang_tidy: checking ${#FILES[@]} file(s)"
"${TIDY}" -p "${BUILD_DIR}" --quiet "${FILES[@]}"
