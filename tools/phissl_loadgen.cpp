// phissl_loadgen: nonblocking TLS-terminator load generator over real
// loopback/LAN sockets — the client half of the epoll socket transport
// (ssl/async/transport.hpp), packaged standalone.
//
//   phissl_loadgen --connect HOST:PORT -n N [client knobs]
//   phissl_loadgen --serve [server knobs]         (runs until N served)
//   phissl_loadgen --self N [both sides' knobs]   (in-process smoke)
//
// --connect drives N ScriptedClient handshakes (each: full or resumed
// handshake, one protected echo, orderly close) against an already
// running socket frontend from a single epoll loop. --serve brings the
// frontend up and prints the bound port, so two processes — or two hosts
// — can split the roles. --self wires both halves in one process over an
// ephemeral loopback port and then ASSERTS the run looks sane (nonzero
// completions, nonzero lane occupancy, and nonzero shed when an
// admission cap was set), exiting nonzero otherwise; CI uses it as the
// socket-path smoke.
//
// Client knobs mirror ReactorConfig's workload shape so a loadgen run
// reproduces the bench sweep mixes: --clients (concurrency window),
// --rate (Poisson arrivals/s, 0 = open as fast as the window allows),
// --resumption / --dhe (per-connection coin ratios), --seed. Server
// knobs: --workers, --max-open, --max-pending (admission cap), --bits
// (test key size), --port.
//
// Exit 0 on success, 1 on a failed run/assertion, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "rsa/engine.hpp"
#include "rsa/key.hpp"
#include "ssl/async/reactor.hpp"
#include "ssl/async/transport.hpp"
#include "ssl/driver.hpp"

namespace {

using namespace phissl;

int usage() {
  std::fprintf(
      stderr,
      "usage: phissl_loadgen --connect HOST:PORT -n N [--clients C]\n"
      "                      [--rate R] [--resumption X] [--dhe X]\n"
      "                      [--seed S] [--bits B]\n"
      "       phissl_loadgen --serve -n N [--port P] [--workers W]\n"
      "                      [--max-open M] [--max-pending K] [--bits B]\n"
      "       phissl_loadgen --self N [any of the above knobs]\n");
  return 2;
}

double parse_double(const char* s) { return std::strtod(s, nullptr); }
std::size_t parse_size(const char* s) {
  return static_cast<std::size_t>(std::strtoull(s, nullptr, 10));
}

void print_client_stats(const ssl::async::LoadGenStats& s) {
  std::printf("client: completed %zu  failed %zu  p50 %.0fus  p99 %.0fus\n",
              s.completed, s.failed, s.latency_us.median, s.latency_us.p99);
}

void print_report(const ssl::DriverReport& r) {
  std::printf(
      "server: completed %zu  failed %zu  shed %zu  resumed %zu\n"
      "        hs/s %.1f  p50 %.0fus  p99 %.0fus\n"
      "        lane occupancy %.2f  batches %llu  res/wakeup %.1f\n"
      "        accepts %llu  eagain %llu  resets %llu\n",
      r.completed, r.failed, static_cast<std::size_t>(r.shed), r.resumed,
      r.handshakes_per_s, r.latency_us.median, r.latency_us.p99,
      r.batch_lane_occupancy, static_cast<unsigned long long>(r.batches),
      r.resumptions_per_wakeup, static_cast<unsigned long long>(r.accepts),
      static_cast<unsigned long long>(r.eagain),
      static_cast<unsigned long long>(r.resets));
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kNone, kConnect, kServe, kSelf };
  Mode mode = Mode::kNone;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t total = 0;
  std::size_t clients = 256;
  double rate = 0.0;
  double resumption = 0.0;
  double dhe = 0.0;
  std::uint64_t seed = 1;
  std::size_t bits = 2048;
  std::size_t workers = 2;
  std::size_t max_open = 1024;
  std::size_t max_pending = 0;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(a, "--connect") == 0) {
      const char* hp = next();
      if (hp == nullptr) return usage();
      const char* colon = std::strrchr(hp, ':');
      if (colon == nullptr) return usage();
      host.assign(hp, colon - hp);
      port = static_cast<std::uint16_t>(std::strtoul(colon + 1, nullptr, 10));
      mode = Mode::kConnect;
    } else if (std::strcmp(a, "--serve") == 0) {
      mode = Mode::kServe;
    } else if (std::strcmp(a, "--self") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      total = parse_size(n);
      mode = Mode::kSelf;
    } else if (std::strcmp(a, "-n") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      total = parse_size(n);
    } else if (std::strcmp(a, "--clients") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      clients = parse_size(n);
    } else if (std::strcmp(a, "--rate") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      rate = parse_double(n);
    } else if (std::strcmp(a, "--resumption") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      resumption = parse_double(n);
    } else if (std::strcmp(a, "--dhe") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      dhe = parse_double(n);
    } else if (std::strcmp(a, "--seed") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      seed = std::strtoull(n, nullptr, 10);
    } else if (std::strcmp(a, "--bits") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      bits = parse_size(n);
    } else if (std::strcmp(a, "--port") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      port = static_cast<std::uint16_t>(std::strtoul(n, nullptr, 10));
    } else if (std::strcmp(a, "--workers") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      workers = parse_size(n);
    } else if (std::strcmp(a, "--max-open") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      max_open = parse_size(n);
    } else if (std::strcmp(a, "--max-pending") == 0) {
      const char* n = next();
      if (n == nullptr) return usage();
      max_pending = parse_size(n);
    } else {
      std::fprintf(stderr, "unknown argument %s\n", a);
      return usage();
    }
  }
  if (mode == Mode::kNone || total == 0) return usage();

  const rsa::PrivateKey& key = rsa::test_key(bits);
  const rsa::Engine server_engine(key, rsa::EngineOptions{});

  ssl::DriverConfig cfg;
  cfg.frontend = ssl::Frontend::kSocket;
  cfg.num_handshakes = total;
  cfg.event_workers = workers;
  cfg.max_open_connections = max_open;
  cfg.event_dhe_ratio = dhe;
  cfg.resumption_ratio = resumption;
  cfg.admission.max_pending_ops = max_pending;
  cfg.seed = seed;
  cfg.socket_clients = clients;
  cfg.socket_arrival_per_s = rate;

  try {
    switch (mode) {
      case Mode::kConnect: {
        const rsa::Engine public_engine(key.pub, server_engine.options());
        ssl::async::LoadGenConfig lg;
        lg.host = host;
        lg.port = port;
        lg.total_connections = total;
        lg.concurrency = clients;
        lg.arrival_rate_per_s = rate;
        lg.seed = seed;
        lg.resumption_ratio = resumption;
        lg.dhe_ratio = dhe;
        lg.identity_pool = ssl::async::identity_pool_for(total);
        const auto stats = ssl::async::run_load(public_engine, lg);
        print_client_stats(stats);
        return stats.failed == 0 ? 0 : 1;
      }
      case Mode::kServe: {
        ssl::async::SocketTransportConfig tcfg;
        tcfg.port = port;
        ssl::async::SocketFrontend frontend(server_engine, cfg, tcfg);
        std::printf("listening on %s:%u (RSA-%zu test key), serving %zu\n",
                    tcfg.bind_addr.c_str(), frontend.port(), bits, total);
        std::fflush(stdout);
        const ssl::DriverReport r = frontend.run();
        print_report(r);
        return r.failed == 0 ? 0 : 1;
      }
      case Mode::kSelf: {
        const ssl::DriverReport r = ssl::run_handshakes(server_engine, cfg);
        print_report(r);
        // Smoke assertions: the run must have actually terminated
        // connections through real sockets and fed the batch engine —
        // and, when an admission cap was set, actually shed under it.
        bool ok = true;
        if (r.completed == 0) {
          std::fprintf(stderr, "FAIL: no connections completed\n");
          ok = false;
        }
        if (r.completed + r.shed + r.failed != total) {
          std::fprintf(stderr, "FAIL: outcomes don't sum to %zu\n", total);
          ok = false;
        }
        if (r.failed != 0) {
          std::fprintf(stderr, "FAIL: %zu connections failed\n", r.failed);
          ok = false;
        }
        if (r.accepts < r.completed) {
          std::fprintf(stderr, "FAIL: accepts below completions\n");
          ok = false;
        }
        if (!(r.batch_lane_occupancy > 0.0)) {
          std::fprintf(stderr, "FAIL: zero lane occupancy\n");
          ok = false;
        }
        if (max_pending != 0 && r.shed == 0) {
          std::fprintf(stderr,
                       "FAIL: admission cap %zu set but nothing shed\n",
                       max_pending);
          ok = false;
        }
        return ok ? 0 : 1;
      }
      case Mode::kNone:
        break;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "phissl_loadgen: %s\n", e.what());
    return 1;
  }
  return usage();
}
