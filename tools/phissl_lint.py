#!/usr/bin/env python3
"""phissl repo lint: constant-time and build-hygiene rules.

Rules:
  CT001  variable-time memcmp in secret-handling code. memcmp early-exits
         on the first differing byte, so comparing MACs/signatures/key
         material with it leaks the match length through timing. Use a
         branch-free accumulate-XOR compare instead.
  CT002  raw index extraction in constant-time kernel code. Files marked
         with the `phissl:ct-kernel` annotation must not call
         ct::index_value() (a secret-indexed load is a cache-timing
         leak) — gather with ct_table_select instead. Lines inside an
         explicit DeclassifyScope region are exempt.
  RNG001 raw libc rand()/srand(). Not cryptographic, not deterministic
         across platforms; use util::Rng.
  SEC001 plain memset()/fill-with-zero used to clear buffers in
         secret-bearing directories (src/rsa, src/ct, src/ssl). Dead-store
         elimination is allowed to drop a memset whose buffer is about to
         be freed, so the "cleared" key bytes stay in heap memory. Use
         util::secure_wipe / util::secure_wipe_all (util/wipe.hpp), whose
         volatile stores + compiler barrier survive optimization.
  BLD001 .cpp file present on disk but not registered in its directory's
         CMakeLists.txt — it silently doesn't build, which is how dead
         kernels and never-run tests happen.

Suppressions: append `// lint:allow(<rule>)` to the offending line, where
<rule> is memcmp, secret-index, rand, or memset.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

# Directories whose code handles secret material: CT001 applies here.
SECRET_DIRS = ("src/rsa", "src/mont", "src/ct", "src/ssl", "src/dh", "src/ec")

# Directories where buffers routinely hold key material and clearing them
# must survive dead-store elimination: SEC001 applies here. Narrower than
# SECRET_DIRS on purpose — src/mont's workspaces hold Montgomery residues
# whose zeroing is algorithmic (not scrubbing), and flagging those would
# bury the real findings.
WIPE_DIRS = ("src/rsa", "src/ct", "src/ssl")

# Files allowed to call index_value() even under the ct-kernel marker:
# the taint machinery itself and the deliberately-leaky fixtures.
CT002_ALLOWED = ("src/ct/taint.hpp", "src/ct/leaky.hpp")

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

MEMCMP_RE = re.compile(r"(?<![\w.:>])memcmp\s*\(")
# Plain clearing a compiler may elide: memset(p, 0, n) and bzero.
# Matching any memset (not just zeroing) keeps the rule simple; non-zero
# memsets of secrets are at least as suspicious.
MEMSET_RE = re.compile(r"(?<![\w.:>])(?:memset|(?<!_)bzero)\s*\(")
RAND_RE = re.compile(r"(?<![\w.:>])s?rand\s*\(")
INDEX_VALUE_RE = re.compile(r"(?<![\w.:>])index_value\s*\(")
CT_KERNEL_MARKER = "phissl:ct-kernel"
ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")


@dataclass
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based; 0 for file-level findings
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _allowed(line: str, rule_tag: str) -> bool:
    m = ALLOW_RE.search(line)
    return bool(m) and m.group(1) == rule_tag


def _strip_line_comment(line: str) -> str:
    # Good enough for these rules: ignore matches that start inside a //
    # comment. (Block comments spanning lines are rare in this repo's
    # style and the rules are all call-expressions.)
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def lint_cpp_file(root: Path, path: Path) -> list[Finding]:
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [Finding(rel, 0, "IO", f"unreadable: {e}")]
    lines = text.splitlines()
    findings: list[Finding] = []

    in_secret_dir = rel.startswith(SECRET_DIRS)
    in_wipe_dir = rel.startswith(WIPE_DIRS)
    is_ct_kernel = CT_KERNEL_MARKER in text and rel not in CT002_ALLOWED
    declassify_depth = 0

    for i, raw in enumerate(lines, start=1):
        code = _strip_line_comment(raw)

        if in_secret_dir and MEMCMP_RE.search(code):
            if not _allowed(raw, "memcmp"):
                findings.append(
                    Finding(rel, i, "CT001",
                            "variable-time memcmp in secret-handling code; "
                            "use a branch-free compare"))

        if in_wipe_dir and MEMSET_RE.search(code):
            if not _allowed(raw, "memset"):
                findings.append(
                    Finding(rel, i, "SEC001",
                            "plain memset/bzero in secret-bearing code can "
                            "be elided by dead-store elimination; use "
                            "util::secure_wipe (util/wipe.hpp)"))

        if RAND_RE.search(code) and not _allowed(raw, "rand"):
            findings.append(
                Finding(rel, i, "RNG001",
                        "raw libc rand()/srand(); use util::Rng"))

        if is_ct_kernel:
            # Track explicit declassified regions: a DeclassifyScope
            # on a line opens one until the matching close marker.
            if "DeclassifyScope" in code:
                declassify_depth += 1
            if "lint:end-declassify" in raw:
                declassify_depth = max(0, declassify_depth - 1)
            if (declassify_depth == 0 and INDEX_VALUE_RE.search(code)
                    and not _allowed(raw, "secret-index")):
                findings.append(
                    Finding(rel, i, "CT002",
                            "raw index extraction in a ct-kernel file; "
                            "gather with ct_table_select"))

    return findings


def lint_cmake_registration(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    dirs = [p for p in (root / "src").iterdir() if p.is_dir()]
    dirs.append(root / "tests")
    for d in dirs:
        cml = d / "CMakeLists.txt"
        if not cml.exists():
            continue
        try:
            content = cml.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for cpp in sorted(d.glob("*.cpp")):
            if cpp.name not in content:
                rel = cpp.relative_to(root).as_posix()
                findings.append(
                    Finding(rel, 0, "BLD001",
                            f"not registered in {d.name}/CMakeLists.txt — "
                            "it never builds"))
    return findings


def run_lint(root: Path) -> list[Finding]:
    findings: list[Finding] = []
    scan_roots = [root / "src", root / "tests"]
    for scan in scan_roots:
        if not scan.exists():
            continue
        for path in sorted(scan.rglob("*")):
            if path.suffix in CPP_SUFFIXES and path.is_file():
                findings.extend(lint_cpp_file(root, path))
    findings.extend(lint_cmake_registration(root))
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"phissl_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    findings = run_lint(root)
    for f in findings:
        print(f)
    if findings:
        print(f"phissl_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("phissl_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
