// phissl_autotune: sweep candidate service configurations over a recorded
// workload trace and emit the winner as tuned-config JSON.
//
//   phissl_autotune <workload.jsonl> [--out tuned_config.json]
//                   [--batch-us X | --model]
//                   [--event-workers 0,2,4] [--seed N] [--all]
//
// The trace comes from any instrumented binary run with --workload (the
// bench harnesses and examples all take the flag; see docs/AUTOTUNE.md).
// Per-batch cost defaults to a live calibration: one 16-lane BatchEngine
// private_op on this host, timed — the same probe bench_sign_service
// uses — so the recommendation reflects the machine it runs on.
// --batch-us X skips the probe (replaying a production trace on a dev
// box against the production cost); --model prices batches with the
// phisim PCIe offload model instead (tuning for the KNC deployment).
//
// The winning config is written as JSON consumable by
// ssl::load_tuned_config() / apply_tuned_config(). --all additionally
// prints the full scoreboard. Exit 0 on success, 2 on usage errors,
// 1 on a bad trace.
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "bigint/bigint.hpp"
#include "obs/workload.hpp"
#include "phisim/autotune.hpp"
#include "phisim/profile.hpp"
#include "rsa/batch_engine.hpp"
#include "rsa/key.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace {

using namespace phissl;

/// Median wall time of one full 16-lane batch private_op on this host, in
/// microseconds (the capacity probe bench_sign_service runs).
double calibrate_batch_us(std::size_t key_bits) {
  const rsa::PrivateKey& key = rsa::test_key(key_bits);
  const rsa::BatchEngine engine(key);
  util::Rng rng(7);
  std::array<bigint::BigInt, rsa::BatchEngine::kBatch> xs;
  std::array<bigint::BigInt, rsa::BatchEngine::kBatch> out;
  for (auto& x : xs) x = bigint::BigInt::random_below(key.pub.n, rng);
  engine.private_op(xs, out);  // warm-up (tables, allocator)
  std::vector<double> samples;
  for (int rep = 0; rep < 5; ++rep) {
    util::Stopwatch sw;
    engine.private_op(xs, out);
    samples.push_back(static_cast<double>(sw.elapsed_ns()) * 1e-3);
  }
  return util::summarize(std::move(samples)).median;
}

std::vector<std::size_t> parse_size_list(const char* s) {
  std::vector<std::size_t> out;
  const char* p = s;
  while (*p != '\0') {
    char* end = nullptr;
    out.push_back(static_cast<std::size_t>(std::strtoull(p, &end, 10)));
    if (end == p) throw std::invalid_argument("bad list element");
    p = (*end == ',') ? end + 1 : end;
  }
  if (out.empty()) throw std::invalid_argument("empty list");
  return out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: phissl_autotune <workload.jsonl> [--out tuned_config.json]\n"
      "                       [--batch-us X | --model]\n"
      "                       [--event-workers 0,2,4] [--seed N] [--all]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string out_path = "tuned_config.json";
  double batch_us_override = 0.0;
  bool use_model = false;
  bool print_all = false;
  std::uint64_t seed = 1;
  phisim::AutotuneGrid grid;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(a, "--batch-us") == 0 && i + 1 < argc) {
      batch_us_override = std::atof(argv[++i]);
    } else if (std::strcmp(a, "--model") == 0) {
      use_model = true;
    } else if (std::strcmp(a, "--event-workers") == 0 && i + 1 < argc) {
      try {
        grid.event_workers = parse_size_list(argv[++i]);
      } catch (const std::exception&) {
        return usage();
      }
    } else if (std::strcmp(a, "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(a, "--all") == 0) {
      print_all = true;
    } else if (a[0] == '-') {
      return usage();
    } else if (trace_path.empty()) {
      trace_path = a;
    } else {
      return usage();
    }
  }
  if (trace_path.empty()) return usage();

  std::vector<obs::WorkloadEvent> events;
  try {
    std::ifstream f(trace_path);
    if (!f) throw std::runtime_error("cannot open " + trace_path);
    events = obs::load_workload_jsonl(f);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "phissl_autotune: %s\n", e.what());
    return 1;
  }
  if (events.empty()) {
    std::fprintf(stderr, "phissl_autotune: trace has no events\n");
    return 1;
  }
  std::size_t key_bits = 1024;
  for (const obs::WorkloadEvent& ev : events) {
    if (ev.key_bits > 0) {
      key_bits = ev.key_bits;
      break;
    }
  }

  phisim::ReplayCost cost;
  if (batch_us_override > 0.0) {
    cost = phisim::ReplayCost::from_measured(batch_us_override);
    std::printf("batch cost: %.1f us (given)\n", cost.batch_us);
  } else if (use_model) {
    const phisim::OffloadModel model;
    const phisim::KernelProfile op =
        phisim::profile_rsa_private(key_bits, rsa::EngineOptions{});
    const std::size_t k = key_bits / 8;
    cost = phisim::ReplayCost::from_offload_model(model, op, k, k);
    std::printf("batch cost: %.1f us (phisim offload model, RSA-%zu)\n",
                cost.batch_us, key_bits);
  } else {
    cost = phisim::ReplayCost::from_measured(calibrate_batch_us(key_bits));
    std::printf("batch cost: %.1f us (calibrated on this host, RSA-%zu)\n",
                cost.batch_us, key_bits);
  }

  const phisim::AutotuneReport report =
      phisim::autotune(events, cost, grid, seed);

  std::printf("trace: %zu events, %llu ops offered\n", events.size(),
              static_cast<unsigned long long>(
                  report.candidates.front().result.offered));
  if (print_all) {
    std::printf("%10s %6s %6s %8s %8s | %9s %9s %7s %7s %12s\n", "linger_us",
                "lanes", "slots", "adm_us", "workers", "p99w_us", "p99l_us",
                "occup", "shed%", "score");
    for (const phisim::AutotuneCandidate& c : report.candidates) {
      std::printf(
          "%10.0f %6zu %6zu %8.0f %8zu | %9.0f %9.0f %6.1f%% %6.2f%% %12.1f\n",
          c.config.linger_us, c.config.max_batch_lanes,
          c.config.dispatch_slots, c.config.admission_max_wait_us,
          c.config.event_workers, c.result.wait_us.p99,
          c.result.sojourn_us.p99, 100.0 * c.result.occupancy,
          100.0 * c.result.shed_fraction, c.score);
    }
  }

  const phisim::TunedConfig& best = report.best;
  std::printf(
      "\nrecommended: linger %.0f us, %zu lanes, %zu dispatch threads, "
      "%zu event workers, admission %s, %zu cache shards\n"
      "predicted:   p99 wait %.0f us, p99 latency %.0f us, occupancy "
      "%.1f%%, shed %.2f%%\n",
      best.linger_us, best.max_batch_lanes, best.dispatch_threads,
      best.event_workers,
      best.admission_max_wait_us > 0.0
          ? (std::to_string(static_cast<long long>(best.admission_max_wait_us)) +
             " us")
                .c_str()
          : "off",
      best.cache_shards, best.predicted_p99_wait_us,
      best.predicted_p99_latency_us, 100.0 * best.predicted_occupancy,
      100.0 * best.predicted_shed_fraction);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "phissl_autotune: cannot open %s\n",
                 out_path.c_str());
    return 1;
  }
  phisim::write_tuned_config_json(out, best);
  std::printf("wrote %s (load with ssl::load_tuned_config)\n",
              out_path.c_str());
  return 0;
}
