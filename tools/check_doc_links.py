#!/usr/bin/env python3
"""Checks that every relative markdown link in the top-level docs resolves
to a file in the repository, and that every #anchor fragment — same-file
or on a relative link to another markdown file — names a real heading in
its target. Anchors are derived from headings the way GitHub does it
(lowercase, punctuation stripped, spaces to dashes, duplicate slugs get
-1/-2/... suffixes). External (http/mailto) links are skipped. Exit code
1 lists every broken link or anchor."""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = [ROOT / "README.md", ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md",
        ROOT / "ROADMAP.md", *sorted((ROOT / "docs").glob("*.md"))]
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE = re.compile(r"^\s*(```|~~~)")


def slugify(heading: str) -> str:
    """GitHub-style anchor slug: strip markdown decoration and
    punctuation, lowercase, spaces/dashes to dashes."""
    # Inline code/emphasis markers and links render to their text.
    # Underscores stay: they are word characters in GitHub's slugs.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)
    text = text.replace("`", "").replace("*", "")
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return re.sub(r"[ ]", "-", text)


def anchors_of(path: Path, cache={}) -> set:
    """All anchor slugs a markdown file exposes (headings only, with
    GitHub's -N disambiguation for duplicates). Fenced code blocks are
    skipped so a commented '# foo' inside ``` doesn't mint an anchor."""
    if path not in cache:
        slugs, counts, in_fence = set(), {}, False
        for line in path.read_text().splitlines():
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING.match(line)
            if not m:
                continue
            slug = slugify(m.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


broken = []
checked = 0
anchors_checked = 0
for doc in DOCS:
    if not doc.exists():
        broken.append(f"{doc.relative_to(ROOT)}: file listed for checking is missing")
        continue
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                # Same-file anchor.
                anchors_checked += 1
                if target[1:] not in anchors_of(doc):
                    broken.append(f"{doc.relative_to(ROOT)}:{lineno}: "
                                  f"broken anchor -> {target}")
                continue
            checked += 1
            rel, _, fragment = target.partition("#")
            path = (doc.parent / rel).resolve()
            if not path.exists():
                broken.append(f"{doc.relative_to(ROOT)}:{lineno}: broken link -> {target}")
                continue
            if fragment and path.suffix == ".md":
                anchors_checked += 1
                if fragment not in anchors_of(path):
                    broken.append(f"{doc.relative_to(ROOT)}:{lineno}: "
                                  f"broken anchor -> {target}")

if broken:
    print("\n".join(broken))
    sys.exit(1)
print(f"check_doc_links: {checked} relative links and {anchors_checked} "
      f"anchors OK across {len(DOCS)} files")
