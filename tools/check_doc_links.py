#!/usr/bin/env python3
"""Checks that every relative markdown link in the top-level docs resolves
to a file in the repository. External (http/mailto) links and pure
#anchors are skipped. Exit code 1 lists every broken link."""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DOCS = [ROOT / "README.md", ROOT / "DESIGN.md", ROOT / "EXPERIMENTS.md",
        ROOT / "ROADMAP.md", *sorted((ROOT / "docs").glob("*.md"))]
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

broken = []
checked = 0
for doc in DOCS:
    if not doc.exists():
        broken.append(f"{doc.relative_to(ROOT)}: file listed for checking is missing")
        continue
    for lineno, line in enumerate(doc.read_text().splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            checked += 1
            path = (doc.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                broken.append(f"{doc.relative_to(ROOT)}:{lineno}: broken link -> {target}")

if broken:
    print("\n".join(broken))
    sys.exit(1)
print(f"check_doc_links: {checked} relative links OK across {len(DOCS)} files")
