#!/usr/bin/env python3
"""Generate differential test vectors for the bigint/Montgomery backends.

Emits BCN-style modular-arithmetic vectors with Python-bigint reference
results; tests/vectors_test.cpp replays the file through every Montgomery
backend (scalar32, scalar64, knc_vec, batch, ifma52, ifma52-portable) and
asserts bit-exact agreement. The value in the corpus is the input
*shapes*, chosen where limbed implementations historically break:

  - moduli and operands straddling the 32/52/64-bit limb boundaries
    (one limb exactly full, one bit into the next limb, one bit short)
  - carry-chain maximizers: all-ones words, 2^k - 1 and 2^k + 1 moduli,
    operands of m-1 / m-2 that force the final conditional subtraction
  - REDC R-boundary edges: powers of two and their neighbors reduced
    mod m, so intermediate products land next to R = beta^d
  - prime moduli just above/below power-of-two boundaries, and
    CRT-shaped composites p*q with |p - q| small (prime-adjacent),
    matching the RSA-CRT operand distribution

The file is a pure function of SEED: regenerating must be byte-identical,
so the checked-in copy under tests/vectors/ can be audited against this
script. Stdlib only — no pip installs.

Format (one vector per line, '#' comments, all hex lowercase, no 0x):

  mul <m> <a> <b> <r>      r = a * b mod m
  sqr <m> <a> <r>          r = a * a mod m
  exp <m> <a> <e> <r>      r = a ^ e mod m   (e fits in 64 bits)

Usage: generate_bigint_vectors.py [-o OUT]  (default: stdout)
"""

from __future__ import annotations

import argparse
import random
import sys

SEED = 0x20260808

# Bit sizes bracketing each backend's limb geometry: 32-bit limbs
# (scalar32, batch lanes), 52-bit digits (ifma52), 64-bit limbs
# (scalar64), 27-bit redundant digits (knc_vec: 54 = 2 digits, 81 = 3).
BOUNDARY_BITS = [31, 32, 33, 51, 52, 53, 54, 63, 64, 65, 81, 96, 104]
# Multi-limb sizes where carry chains span several words.
WIDE_BITS = [128, 156, 208, 256, 384, 512]
BIG_BITS = [1024]

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]


def is_probable_prime(n: int, rng: random.Random) -> bool:
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    # Deterministic bases cover n < 3.3e24; seeded-random extras beyond.
    bases = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
    if n >= 1 << 82:
        bases += [rng.randrange(2, n - 1) for _ in range(20)]
    for a in bases:
        a %= n
        if a < 2:
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int, rng: random.Random) -> int:
    n |= 1
    while not is_probable_prime(n, rng):
        n += 2
    return n


def moduli_for(bits: int, rng: random.Random) -> list[int]:
    """Odd moduli > 1 concentrating the failure shapes at this size."""
    lo, hi = 1 << (bits - 1), 1 << bits
    out = []
    # All-ones: every partial product's carry propagates the full width.
    out.append(hi - 1)
    # Power-of-two + 1: maximally sparse, REDC quotients hit the edge.
    if bits >= 3:
        out.append((lo | 1) if lo + 1 == hi - 1 else hi // 2 + 1)
    out.append(hi - 3 if (hi - 3) % 2 == 1 else hi - 5)
    # Prime just above the power of two (and its nearest odd neighbor).
    out.append(next_prime(lo + 1, rng))
    # Random odd moduli of exactly `bits` bits.
    for _ in range(3):
        out.append(rng.randrange(lo, hi) | lo | 1)
    # CRT-shaped composite: p*q with p, q prime-adjacent halves.
    if bits >= 16:
        half = bits // 2
        p = next_prime((1 << (half - 1)) + rng.randrange(1 << (half - 2)), rng)
        q = next_prime(p + 2, rng)
        out.append(p * q)
    seen, uniq = set(), []
    for m in out:
        if m > 2 and m % 2 == 1 and m not in seen:
            seen.add(m)
            uniq.append(m)
    return uniq


def operands_for(m: int, bits: int, rng: random.Random) -> list[int]:
    """Special values in [0, m): limb-boundary, carry and R-edge shapes."""
    ops = {0, 1, 2, m - 1, m - 2, m >> 1}
    # Powers of two (and +/-1 neighbors) at every limb boundary that fits:
    # the shapes whose Montgomery images sit next to R = beta^d.
    for k in (27, 31, 32, 33, 51, 52, 53, 63, 64, 65, bits - 1, bits):
        if k > 0:
            for v in ((1 << k) - 1, 1 << k, (1 << k) + 1):
                ops.add(v % m)
    # All-ones runs of whole 32-bit words: worst-case carry chains.
    for words in (1, 2, bits // 32 or 1):
        ops.add(((1 << (32 * words)) - 1) % m)
    for _ in range(4):
        ops.add(rng.randrange(m))
    return sorted(ops)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("-o", "--out", default="-")
    args = ap.parse_args()
    rng = random.Random(SEED)

    lines = [
        "# Differential bigint/Montgomery vectors.",
        f"# Generated by tools/generate_bigint_vectors.py (seed {SEED:#x});",
        "# regenerate with: python3 tools/generate_bigint_vectors.py "
        "-o tests/vectors/bigint_vectors.txt",
        "# Replayed by vectors_test across all Montgomery backends.",
    ]
    n_mul = n_sqr = n_exp = 0

    def emit_pairs(m: int, bits: int, pair_budget: int, exp_every: int) -> None:
        nonlocal n_mul, n_sqr, n_exp
        mh = f"{m:x}"
        ops = operands_for(m, bits, rng)
        pairs = []
        # Deterministic sweep of the special-value grid, then random fill.
        for i, a in enumerate(ops):
            pairs.append((a, ops[(i * 7 + 3) % len(ops)]))
        while len(pairs) < pair_budget:
            pairs.append((rng.randrange(m), rng.randrange(m)))
        for i, (a, b) in enumerate(pairs[:pair_budget]):
            lines.append(f"mul {mh} {a:x} {b:x} {a * b % m:x}")
            lines.append(f"sqr {mh} {a:x} {a * a % m:x}")
            n_mul += 1
            n_sqr += 1
            if exp_every and i % exp_every == 0:
                # Exponents <= 64 bits: window schedules of every ladder
                # get exercised without making the replay slow. e >= 1
                # (the e = 0 convention is not part of the backend API).
                e = rng.choice(
                    [1, 2, 3, (1 << 16) + 1, (1 << 32) - 1, (1 << 52) + 1,
                     (1 << 64) - 1, rng.randrange(1, 1 << 64)])
                lines.append(f"exp {mh} {a:x} {e:x} {pow(a, e, m):x}")
                n_exp += 1

    for bits in BOUNDARY_BITS:
        for m in moduli_for(bits, rng):
            emit_pairs(m, bits, pair_budget=28, exp_every=10)
    for bits in WIDE_BITS:
        for m in moduli_for(bits, rng):
            emit_pairs(m, bits, pair_budget=16, exp_every=8)
    for bits in BIG_BITS:
        for m in moduli_for(bits, rng)[:4]:
            emit_pairs(m, bits, pair_budget=6, exp_every=6)

    lines.append(f"# totals: {n_mul} mul, {n_sqr} sqr, {n_exp} exp")
    text = "\n".join(lines) + "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {n_mul + n_sqr + n_exp} vectors to {args.out}",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
