#!/usr/bin/env python3
"""Verify the checked-in fuzz seed corpus matches fuzz_seed_gen's output.

The corpus under tests/corpus/ is a pure function of the fixtures in
src/fuzz/ (see seeds.cpp); this check regenerates it into a temp dir and
diffs byte-for-byte, so corpus drift — a seed edited by hand, a fixture
change without a regen — fails the suite instead of silently fuzzing
stale inputs.

Usage: check_corpus.py --seed-gen <path-to-fuzz_seed_gen> --corpus <dir>
"""

from __future__ import annotations

import argparse
import filecmp
import pathlib
import subprocess
import sys
import tempfile


def tree_files(root: pathlib.Path) -> dict[str, pathlib.Path]:
    return {
        str(p.relative_to(root)): p
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--seed-gen", required=True)
    ap.add_argument("--corpus", required=True)
    args = ap.parse_args()

    corpus = pathlib.Path(args.corpus)
    if not corpus.is_dir():
        print(f"check_corpus: missing corpus dir {corpus}", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="phissl-corpus-") as tmp:
        subprocess.run([args.seed_gen, tmp], check=True)
        fresh = tree_files(pathlib.Path(tmp))
        checked_in = tree_files(corpus)

        bad = []
        for rel in sorted(set(fresh) | set(checked_in)):
            if rel not in fresh:
                bad.append(f"extra file not produced by seed_gen: {rel}")
            elif rel not in checked_in:
                bad.append(f"missing from checked-in corpus: {rel}")
            elif not filecmp.cmp(fresh[rel], checked_in[rel], shallow=False):
                bad.append(f"content drift: {rel}")

        if bad:
            print("check_corpus: corpus out of sync with fuzz_seed_gen "
                  "(rerun: fuzz_seed_gen tests/corpus):", file=sys.stderr)
            for line in bad:
                print(f"  {line}", file=sys.stderr)
            return 1

    print(f"check_corpus: {len(checked_in)} file(s) in sync")
    return 0


if __name__ == "__main__":
    sys.exit(main())
