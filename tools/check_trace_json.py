#!/usr/bin/env python3
"""Validates the observability export formats produced by the bench
harnesses (`--trace` / `--metrics` / `--workload`, see src/obs/export.hpp):

  - the Chrome trace-event JSON must parse and every event must carry the
    fields chrome://tracing / Perfetto require ("X" complete events need a
    duration; the drop counter rides along as a "C" event);
  - the Prometheus text dump must parse line-by-line, histogram `le`
    buckets must be cumulative (monotone non-decreasing, capped by +Inf)
    and `+Inf` must equal `_count`;
  - the workload trace JSONL (src/obs/workload.hpp) must open with the
    versioned schema header whose event count matches the body, and every
    event line must carry the full field set with in-range values
    (lanes_filled <= 16, 0/1 flags, non-decreasing arrival_ns — the
    recorder drains rings sorted by arrival).

Usage:
  check_trace_json.py --trace trace.json --metrics metrics.prom \\
                      --workload workload.jsonl

Run by CI after `bench_sign_service --smoke --trace ... --metrics ...
--workload ...`. Exits non-zero with a diagnostic on the first violation.
"""

import argparse
import json
import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r"\s+(?P<value>[^ ]+)$"
)
LE_RE = re.compile(r'le="(?P<le>[^"]+)"')


def strip_le(labels):
    """Drops the le="..." pair so bucket series key-match their _count
    sample (which has no le, and no braces at all when le was the only
    label)."""
    inner = LE_RE.sub("", labels[1:-1])
    inner = ",".join(p for p in inner.split(",") if p)
    return "{" + inner + "}" if inner else ""


def fail(msg):
    print(f"check_trace_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: top-level 'traceEvents' list missing")
    if not events:
        fail(f"{path}: traceEvents is empty (no spans recorded?)")
    phases = {}
    for i, ev in enumerate(events):
        for field in ("name", "ph", "pid", "ts"):
            if field not in ev:
                fail(f"{path}: event #{i} missing '{field}': {ev}")
        if ev["ph"] == "X":
            if "dur" not in ev or "tid" not in ev:
                fail(f"{path}: complete event #{i} missing dur/tid: {ev}")
            if ev["dur"] < 0 or ev["ts"] < 0:
                fail(f"{path}: event #{i} has negative ts/dur: {ev}")
        phases[ev["ph"]] = phases.get(ev["ph"], 0) + 1
    if phases.get("X", 0) == 0:
        fail(f"{path}: no 'X' (complete) span events")
    drops = [
        ev for ev in events
        if ev["ph"] == "C" and ev["name"] == "trace_dropped_spans"
    ]
    if len(drops) != 1:
        fail(f"{path}: expected exactly one trace_dropped_spans counter "
             f"event, found {len(drops)}")
    print(f"check_trace_json: {path}: {phases.get('X', 0)} spans, "
          f"{drops[0]['args']['dropped']} dropped — OK")


def check_metrics(path):
    families = {}  # name -> type
    histograms = {}  # base name+labels(sans le) -> list of (le, value)
    counts = {}  # base name+labels -> _count value
    samples = 0
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("# HELP "):
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram"):
                    fail(f"{path}:{lineno}: malformed TYPE line: {line}")
                families[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                fail(f"{path}:{lineno}: unknown comment line: {line}")
            m = SAMPLE_RE.match(line)
            if m is None:
                fail(f"{path}:{lineno}: unparseable sample line: {line}")
            try:
                value = float(m.group("value"))
            except ValueError:
                fail(f"{path}:{lineno}: non-numeric value: {line}")
            if math.isnan(value):
                fail(f"{path}:{lineno}: NaN sample value: {line}")
            samples += 1
            name, labels = m.group("name"), m.group("labels") or ""
            if name.endswith("_bucket"):
                le_m = LE_RE.search(labels)
                if le_m is None:
                    fail(f"{path}:{lineno}: _bucket sample without le: "
                         f"{line}")
                key = (name, strip_le(labels))
                histograms.setdefault(key, []).append(
                    (le_m.group("le"), value))
            elif name.endswith("_count"):
                counts[(name[:-len("_count")], labels)] = value
    if samples == 0:
        fail(f"{path}: no samples")
    for (name, labels), buckets in histograms.items():
        prev = -1.0
        for le, value in buckets:  # file order == ascending le
            if value < prev:
                fail(f"{path}: {name}{labels}: cumulative bucket le={le} "
                     f"decreased ({value} < {prev})")
            prev = value
        if buckets[-1][0] != "+Inf":
            fail(f"{path}: {name}{labels}: last bucket is not +Inf")
        base = name[:-len("_bucket")]
        if (base, labels) not in counts:
            fail(f"{path}: {name}{labels}: no matching _count sample")
        if buckets[-1][1] != counts[(base, labels)]:
            fail(f"{path}: {name}{labels}: +Inf bucket "
                 f"({buckets[-1][1]}) != _count ({counts[(base, labels)]})")
    print(f"check_trace_json: {path}: {samples} samples, "
          f"{len(families)} families, {len(histograms)} histogram "
          f"series — OK")


WORKLOAD_SCHEMA = "phissl-workload-trace"
WORKLOAD_VERSION = 1
WORKLOAD_OPS = ("sign", "private_op", "dhe_sign")
WORKLOAD_U64_FIELDS = ("arrival_ns", "queue_wait_ns", "batch_id")


def check_workload(path):
    with open(path, encoding="utf-8") as f:
        lines = [ln.rstrip("\n") for ln in f if ln.strip()]
    if not lines:
        fail(f"{path}: empty workload trace")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(f"{path}:1: header is not valid JSON: {e}")
    if header.get("schema") != WORKLOAD_SCHEMA:
        fail(f"{path}:1: schema is {header.get('schema')!r}, "
             f"expected {WORKLOAD_SCHEMA!r}")
    if header.get("version") != WORKLOAD_VERSION:
        fail(f"{path}:1: unsupported version {header.get('version')!r}")
    declared = header.get("events")
    if declared != len(lines) - 1:
        fail(f"{path}:1: header declares {declared} events, "
             f"body has {len(lines) - 1}")
    prev_arrival = 0
    for lineno, line in enumerate(lines[1:], 2):
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not valid JSON: {e}")
        for field in WORKLOAD_U64_FIELDS:
            v = ev.get(field)
            if not isinstance(v, int) or v < 0:
                fail(f"{path}:{lineno}: '{field}' missing or not a "
                     f"non-negative integer: {line}")
        if ev.get("op") not in WORKLOAD_OPS:
            fail(f"{path}:{lineno}: unknown op {ev.get('op')!r}")
        key_bits = ev.get("key_bits")
        if not isinstance(key_bits, int) or key_bits < 0:
            fail(f"{path}:{lineno}: bad key_bits {key_bits!r}")
        lanes = ev.get("lanes_filled")
        if not isinstance(lanes, int) or not 0 <= lanes <= 16:
            fail(f"{path}:{lineno}: lanes_filled {lanes!r} outside "
                 f"[0, 16]")
        for flag in ("shed", "resumed"):
            if ev.get(flag) not in (0, 1, True, False):
                fail(f"{path}:{lineno}: '{flag}' missing or not a 0/1 "
                     f"flag: {line}")
        if ev["arrival_ns"] < prev_arrival:
            fail(f"{path}:{lineno}: arrival_ns went backwards "
                 f"({ev['arrival_ns']} < {prev_arrival}) — the exporter "
                 f"drains rings sorted by arrival")
        prev_arrival = ev["arrival_ns"]
    print(f"check_trace_json: {path}: {len(lines) - 1} workload events "
          f"— OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace JSON file to validate")
    ap.add_argument("--metrics", help="Prometheus text dump to validate")
    ap.add_argument("--workload",
                    help="workload trace JSONL file to validate")
    args = ap.parse_args()
    if not args.trace and not args.metrics and not args.workload:
        ap.error("nothing to check: pass --trace, --metrics, and/or "
                 "--workload")
    if args.trace:
        check_trace(args.trace)
    if args.metrics:
        check_metrics(args.metrics)
    if args.workload:
        check_workload(args.workload)


if __name__ == "__main__":
    main()
