// key_agreement: tour of the non-RSA public-key algorithms — finite-field
// DH, DSA, ECDH (P-256), and ECDSA — all running on the library's own
// substrates.
//
//   ./key_agreement
#include <cstdio>
#include <string>

#include "dh/dh.hpp"
#include "dh/dsa.hpp"
#include "ec/p256.hpp"
#include "util/random.hpp"
#include "util/timing.hpp"

int main() {
  using namespace phissl;
  util::Rng rng(31337);

  // --- Finite-field DH (RFC 3526 group 14, vectorized kernel) ----------
  {
    util::Stopwatch sw;
    const dh::Dh group(dh::rfc3526_group14());
    const dh::KeyPair alice = group.generate_keypair(rng);
    const dh::KeyPair bob = group.generate_keypair(rng);
    const auto s1 = group.compute_shared(alice.x, bob.y);
    const auto s2 = group.compute_shared(bob.x, alice.y);
    std::printf("DH-2048 (MODP group 14): agreement %s  [%.1f ms]\n",
                s1 == s2 ? "OK" : "FAILED", sw.elapsed_s() * 1e3);
  }

  // --- DSA ---------------------------------------------------------------
  {
    util::Stopwatch sw;
    const dsa::Params params = dsa::generate_params(512, 160, rng);
    const dsa::Dsa signer(params);
    const dsa::KeyPair kp = signer.generate_keypair(rng);
    const std::string msg = "signed with DSA";
    const std::span<const std::uint8_t> bytes{
        reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
    const auto sig = signer.sign(bytes, kp.x, rng);
    std::printf("DSA-512/160: sign/verify %s  [%.1f ms incl. paramgen]\n",
                signer.verify(bytes, sig, kp.y) ? "OK" : "FAILED",
                sw.elapsed_s() * 1e3);
  }

  // --- ECDH on P-256 -------------------------------------------------------
  {
    util::Stopwatch sw;
    const ec::P256 curve;
    const ec::EcKeyPair alice = ec::ecdh_generate(curve, rng);
    const ec::EcKeyPair bob = ec::ecdh_generate(curve, rng);
    const auto s1 = ec::ecdh_shared(curve, alice.d, bob.q);
    const auto s2 = ec::ecdh_shared(curve, bob.d, alice.q);
    std::printf("ECDH P-256: agreement %s  [%.1f ms]\n",
                s1 == s2 ? "OK" : "FAILED", sw.elapsed_s() * 1e3);
  }

  // --- ECDSA on P-256 ------------------------------------------------------
  {
    util::Stopwatch sw;
    const ec::P256 curve;
    const ec::EcKeyPair kp = ec::ecdh_generate(curve, rng);
    const std::string msg = "signed with ECDSA";
    const std::span<const std::uint8_t> bytes{
        reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
    const auto sig = ec::ecdsa_sign(curve, bytes, kp.d, rng);
    const bool ok = ec::ecdsa_verify(curve, bytes, sig, kp.q);
    auto tampered = sig;
    tampered.r += bigint::BigInt{1};
    const bool rejected = !ec::ecdsa_verify(curve, bytes, tampered, kp.q);
    std::printf("ECDSA P-256: sign/verify %s, tamper rejected %s  [%.1f ms]\n",
                ok ? "OK" : "FAILED", rejected ? "OK" : "FAILED",
                sw.elapsed_s() * 1e3);
  }
  return 0;
}
