// secure_echo: the complete PhiOpenSSL stack end-to-end — RSA handshake
// (vectorized private-key op on the server), TLS 1.2 key derivation, and
// an encrypted+authenticated echo conversation over the record layer.
//
//   ./secure_echo [key_bits]    (default 1024)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baseline/systems.hpp"
#include "rsa/key.hpp"
#include "ssl/handshake.hpp"
#include "ssl/record.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace phissl;

  const std::size_t bits = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  std::printf("== secure echo over PhiOpenSSL (RSA-%zu) ==\n", bits);

  const rsa::PrivateKey& key = rsa::test_key(bits);
  const rsa::Engine server_engine =
      baseline::make_engine(baseline::System::kPhiOpenSSL, key);
  const rsa::Engine client_engine(key.pub,
                                  server_engine.options());
  util::Rng rng(1234);

  // --- Handshake ---------------------------------------------------------
  ssl::ServerHandshake server(server_engine, rng);
  ssl::ClientHandshake client(client_engine, rng);

  const auto hello = client.start();
  std::printf("client -> ClientHello (%zu suites)\n", hello.cipher_suites.size());
  const auto flight = server.on_client_hello(hello);
  if (!flight) return 1;
  std::printf("server -> ServerHello + Certificate (suite 0x%04x)\n",
              flight.value().hello.chosen_suite);
  const auto kex = client.on_server_hello(flight.value().hello,
                                          *flight.value().certificate);
  if (!kex) return 1;
  std::printf("client -> ClientKeyExchange (%zu bytes) + Finished\n",
              kex.value().first.encrypted_premaster.size());
  const auto fin = server.on_key_exchange(kex.value().first, kex.value().second);
  if (!fin) {
    std::printf("server alert: %s\n", ssl::to_string(fin.alert()));
    return 1;
  }
  if (!client.on_server_finished(fin.value())) return 1;
  std::printf("handshake complete; masters match: %s\n",
              client.master() == server.master() ? "yes" : "NO");

  // --- Protected application data ----------------------------------------
  ssl::Session client_session(client.session_keys(), false);
  ssl::Session server_session(server.session_keys(), true);

  for (const std::string msg :
       {"hello over AES-128-CBC + HMAC-SHA256", "second record",
        "the SSL handshake cost was one vectorized RSA op"}) {
    const std::span<const std::uint8_t> bytes{
        reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
    const auto wire = client_session.send(bytes, rng);
    const auto at_server = server_session.receive(wire);
    if (!at_server) return 1;
    const auto echoed = server_session.send(*at_server, rng);
    const auto at_client = client_session.receive(echoed);
    if (!at_client) return 1;
    std::printf("echoed %3zu bytes through %3zu-byte records: %s\n",
                msg.size(), wire.size(),
                std::equal(at_client->begin(), at_client->end(), bytes.begin(),
                           bytes.end())
                    ? "OK"
                    : "MISMATCH");
  }

  // Tampered record must be rejected.
  auto wire = client_session.send({{0x01, 0x02}}, rng);
  wire[wire.size() / 2] ^= 0x80;
  std::printf("tampered record rejected: %s\n",
              server_session.receive(wire).has_value() ? "NO (!!)" : "yes");
  return 0;
}
