// mont_playground: a tour of the Montgomery layer — shows the redundant-
// radix digit form, runs one exponentiation on all three kernels, and
// sweeps the vector kernel's digit width (the design knob DESIGN.md
// discusses).
//
//   ./mont_playground [modulus_bits]    (default 1024)
#include <cstdio>
#include <cstdlib>

#include "bigint/bigint.hpp"
#include "mont/modexp.hpp"
#include "mont/mont32.hpp"
#include "mont/mont64.hpp"
#include "mont/vector_mont.hpp"
#include "simd/vec.hpp"
#include "util/random.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace phissl;
  using bigint::BigInt;

  const std::size_t bits = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  util::Rng rng(3);

  std::printf("== Montgomery playground (SIMD backend: %s) ==\n",
              simd::backend_name());
  const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
  const BigInt base = BigInt::random_below(m, rng);
  const BigInt exp = BigInt::random_bits(bits, rng);

  // The redundant-radix representation.
  const mont::VectorMontCtx vctx(m);
  std::printf("modulus: %zu bits -> %zu digits of %u bits "
              "(padded to %zu lanes)\n",
              bits, vctx.digits(), vctx.digit_bits(), vctx.rep_size());

  const BigInt oracle = base.mod_pow(exp, m);
  std::printf("\n%-28s %12s %8s\n", "kernel/schedule", "time (ms)", "check");

  const auto run = [&](const char* label, auto&& fn) {
    util::Stopwatch sw;
    const BigInt r = fn();
    std::printf("%-28s %12.3f %8s\n", label, sw.elapsed_s() * 1e3,
                r == oracle ? "OK" : "WRONG");
  };

  const mont::MontCtx32 c32(m);
  const mont::MontCtx64 c64(m);
  run("scalar32 / sliding-window",
      [&] { return mont::sliding_window_exp(c32, base, exp); });
  run("scalar64 / sliding-window",
      [&] { return mont::sliding_window_exp(c64, base, exp); });
  run("vector   / fixed-window",
      [&] { return mont::fixed_window_exp(vctx, base, exp); });

  std::printf("\ndigit-width sweep (vector kernel, fixed window):\n");
  std::printf("%-12s %8s %12s\n", "digit bits", "digits", "time (ms)");
  for (unsigned db = 20; db <= 29; ++db) {
    try {
      const mont::VectorMontCtx ctx(m, db);
      util::Stopwatch sw;
      const BigInt r = mont::fixed_window_exp(ctx, base, exp);
      std::printf("%-12u %8zu %12.3f%s\n", db, ctx.digits(),
                  sw.elapsed_s() * 1e3, r == oracle ? "" : "  WRONG");
    } catch (const std::invalid_argument&) {
      std::printf("%-12u %8s %12s\n", db, "-", "overflow-guard");
    }
  }
  return 0;
}
