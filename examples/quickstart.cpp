// Quickstart: generate an RSA key, sign and verify a message, encrypt and
// decrypt a secret — all on the PhiOpenSSL (vectorized) engine.
//
//   ./quickstart [key_bits]       (default 1024)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baseline/systems.hpp"
#include "rsa/key.hpp"
#include "rsa/pkcs1.hpp"
#include "util/hex.hpp"
#include "util/random.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace phissl;

  const std::size_t bits = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  util::Rng rng(2026);

  std::printf("== PhiOpenSSL quickstart ==\n");
  std::printf("generating RSA-%zu key (deterministic seed)...\n", bits);
  util::Stopwatch sw;
  const rsa::PrivateKey key = rsa::generate_key(bits, rng);
  std::printf("  done in %.1f ms; n = %s...\n", sw.elapsed_s() * 1e3,
              key.pub.n.to_hex().substr(0, 32).c_str());

  // Engine configured like the paper's library: vectorized Montgomery,
  // fixed-window exponentiation, CRT.
  const rsa::Engine engine =
      baseline::make_engine(baseline::System::kPhiOpenSSL, key);

  // --- Sign / verify ---------------------------------------------------
  const std::string msg = "the SSL handshake is bottlenecked by RSA";
  const std::span<const std::uint8_t> msg_bytes{
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};

  sw.reset();
  const auto sig = rsa::sign_sha256(engine, msg_bytes);
  std::printf("sign   : %.3f ms, signature = %s...\n", sw.elapsed_s() * 1e3,
              util::hex_encode(sig).substr(0, 32).c_str());

  sw.reset();
  const bool ok = rsa::verify_sha256(engine, msg_bytes, sig);
  std::printf("verify : %.3f ms -> %s\n", sw.elapsed_s() * 1e3,
              ok ? "VALID" : "INVALID");

  auto tampered = sig;
  tampered[0] ^= 1;
  std::printf("tamper : -> %s (must be INVALID)\n",
              rsa::verify_sha256(engine, msg_bytes, tampered) ? "VALID"
                                                              : "INVALID");

  // --- Encrypt / decrypt -----------------------------------------------
  const std::string secret = "premaster secret";
  const std::span<const std::uint8_t> secret_bytes{
      reinterpret_cast<const std::uint8_t*>(secret.data()), secret.size()};
  const auto ct = rsa::encrypt_pkcs1(engine, secret_bytes, rng);
  const auto pt = rsa::decrypt_pkcs1(engine, ct);
  std::printf("encrypt/decrypt round-trip: %s\n",
              pt.has_value() &&
                      std::equal(pt->begin(), pt->end(), secret_bytes.begin(),
                                 secret_bytes.end())
                  ? "OK"
                  : "FAILED");
  return ok ? 0 : 1;
}
