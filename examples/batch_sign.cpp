// batch_sign: signs a batch of messages under each of the paper's three
// systems and prints a throughput comparison — the paper's RSA private-key
// experiment (E4) as a runnable application.
//
//   ./batch_sign [key_bits] [num_messages]    (defaults: 2048, 16)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "baseline/systems.hpp"
#include "rsa/key.hpp"
#include "rsa/pkcs1.hpp"
#include "util/random.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  using namespace phissl;

  const std::size_t bits = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2048;
  const std::size_t count = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;

  std::printf("== batch signing, RSA-%zu, %zu messages ==\n", bits, count);
  const rsa::PrivateKey& key = rsa::test_key(bits);

  util::Rng rng(7);
  std::vector<std::vector<std::uint8_t>> messages;
  messages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) messages.push_back(rng.bytes(64));

  std::printf("%-18s %12s %14s %10s\n", "system", "total (ms)", "per-sign (ms)",
              "signs/s");
  double phi_per_sign = 0;
  for (const auto system : baseline::all_systems()) {
    const rsa::Engine engine = baseline::make_engine(system, key);
    // Warm-up (first op touches cold caches).
    (void)rsa::sign_sha256(engine, messages[0]);

    util::Stopwatch sw;
    std::vector<std::vector<std::uint8_t>> sigs;
    sigs.reserve(count);
    for (const auto& m : messages) sigs.push_back(rsa::sign_sha256(engine, m));
    const double total_ms = sw.elapsed_s() * 1e3;
    const double per = total_ms / static_cast<double>(count);
    if (system == baseline::System::kPhiOpenSSL) phi_per_sign = per;

    std::printf("%-18s %12.2f %14.3f %10.1f", baseline::name(system), total_ms,
                per, 1e3 / per);
    if (system != baseline::System::kPhiOpenSSL && phi_per_sign > 0) {
      std::printf("   (PhiOpenSSL speedup: %.2fx)", per / phi_per_sign);
    }
    std::printf("\n");

    // Verify every signature before trusting the timing.
    for (std::size_t i = 0; i < count; ++i) {
      if (!rsa::verify_sha256(engine, messages[i], sigs[i])) {
        std::printf("!! signature %zu failed verification\n", i);
        return 1;
      }
    }
  }
  return 0;
}
