// ssl_server_sim: simulates an SSL terminator doing full RSA-key-transport
// handshakes, comparing the three libcrypto systems — the paper's
// motivating workload as a runnable application.
//
//   ./ssl_server_sim [key_bits] [handshakes] [threads]
//   (defaults: 1024, 32, 2)
#include <cstdio>
#include <cstdlib>

#include "baseline/systems.hpp"
#include "rsa/key.hpp"
#include "ssl/driver.hpp"

int main(int argc, char** argv) {
  using namespace phissl;

  const std::size_t bits = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  const std::size_t count = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 32;
  const std::size_t threads = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 2;

  std::printf("== SSL handshake simulation: RSA-%zu, %zu handshakes, "
              "%zu worker threads ==\n",
              bits, count, threads);
  const rsa::PrivateKey& key = rsa::test_key(bits);

  std::printf("%-18s %10s %12s %14s %14s\n", "system", "ok", "hs/s",
              "lat p50 (us)", "lat p95 (us)");
  for (const auto system : baseline::all_systems()) {
    const rsa::Engine engine = baseline::make_engine(system, key);
    ssl::DriverConfig cfg;
    cfg.num_handshakes = count;
    cfg.num_threads = threads;
    cfg.seed = 42;
    const ssl::DriverReport r = ssl::run_handshakes(engine, cfg);
    std::printf("%-18s %7zu/%zu %12.1f %14.0f %14.0f\n",
                baseline::name(system), r.completed, count, r.handshakes_per_s,
                r.latency_us.median, r.latency_us.p95);
    if (r.failed != 0) {
      std::printf("!! %zu handshakes failed\n", r.failed);
      return 1;
    }
  }
  return 0;
}
