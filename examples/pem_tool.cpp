// pem_tool: key management round trip — generate a key, serialize to
// OpenSSL-compatible PKCS#1 PEM, parse it back, and use the parsed key to
// sign. Demonstrates the DER/PEM layer; output is directly consumable by
// `openssl rsa -in <file> -check -noout`.
//
//   ./pem_tool [key_bits] [out.pem]    (defaults: 1024, stdout only)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "baseline/systems.hpp"
#include "rsa/der.hpp"
#include "rsa/key.hpp"
#include "rsa/pkcs1.hpp"
#include "util/random.hpp"

int main(int argc, char** argv) {
  using namespace phissl;

  const std::size_t bits = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1024;
  util::Rng rng(static_cast<std::uint64_t>(bits) * 31 + 7);

  std::printf("generating RSA-%zu key...\n", bits);
  const rsa::PrivateKey key = rsa::generate_key(bits, rng);

  const std::string priv_pem = rsa::private_key_to_pem(key);
  const std::string pub_pem = rsa::public_key_to_pem(key.pub);
  std::printf("%s%s", priv_pem.c_str(), pub_pem.c_str());

  if (argc > 2) {
    std::ofstream out(argv[2]);
    out << priv_pem;
    std::printf("written to %s (check with: openssl rsa -in %s -check "
                "-noout)\n",
                argv[2], argv[2]);
  }

  // Round trip and use the re-parsed key.
  const rsa::PrivateKey parsed = rsa::private_key_from_pem(priv_pem);
  const rsa::Engine engine =
      baseline::make_engine(baseline::System::kPhiOpenSSL, parsed);
  const std::string msg = "signed with a key that survived PEM";
  const std::span<const std::uint8_t> msg_bytes{
      reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()};
  const auto sig = rsa::sign_sha256(engine, msg_bytes);
  std::printf("parse-back consistent: %s; signature verifies: %s\n",
              parsed.is_consistent() ? "yes" : "NO",
              rsa::verify_sha256(engine, msg_bytes, sig) ? "yes" : "NO");
  return 0;
}
