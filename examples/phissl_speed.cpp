// phissl_speed: `openssl speed rsa`-style CLI over the phissl engines.
//
//   ./phissl_speed [system] [seconds-per-row]
//     system: phi | mpss | openssl | all   (default all)
//
// Prints sign/s and verify/s per key size for the chosen system(s), plus
// the 16-lane batched signing mode for PhiOpenSSL.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "baseline/systems.hpp"
#include "rsa/batch_engine.hpp"
#include "rsa/batch_sign.hpp"
#include "rsa/key.hpp"
#include "rsa/pkcs1.hpp"
#include "util/random.hpp"
#include "util/timing.hpp"

namespace {

using namespace phissl;

// Runs op() repeatedly for ~budget seconds; returns ops/s.
double ops_per_second(const std::function<void()>& op, double budget) {
  op();  // warm-up
  util::Stopwatch sw;
  std::size_t n = 0;
  while (sw.elapsed_s() < budget) {
    op();
    ++n;
  }
  return static_cast<double>(n) / sw.elapsed_s();
}

void speed_system(baseline::System system, double budget) {
  std::printf("\n-- %s --\n", baseline::name(system));
  std::printf("%10s %14s %14s\n", "key", "sign/s", "verify/s");
  util::Rng rng(1);
  const std::vector<std::uint8_t> msg = rng.bytes(64);
  for (const std::size_t bits : {1024u, 2048u, 4096u}) {
    const rsa::PrivateKey& key = rsa::test_key(bits);
    const rsa::Engine engine = baseline::make_engine(system, key);
    const auto sig = rsa::sign_sha256(engine, msg);
    const double signs =
        ops_per_second([&] { (void)rsa::sign_sha256(engine, msg); }, budget);
    const double verifies = ops_per_second(
        [&] { (void)rsa::verify_sha256(engine, msg, sig); }, budget);
    std::printf("%7zu-bit %14.1f %14.1f\n", bits, signs, verifies);
  }
}

void speed_batch(double budget) {
  std::printf("\n-- PhiOpenSSL, 16-lane batched signing --\n");
  std::printf("%10s %14s %18s\n", "key", "sign/s", "(per batch ms)");
  util::Rng rng(2);
  std::array<std::vector<std::uint8_t>, 16> bufs;
  std::array<std::span<const std::uint8_t>, 16> msgs;
  for (std::size_t l = 0; l < 16; ++l) {
    bufs[l] = rng.bytes(64);
    msgs[l] = bufs[l];
  }
  for (const std::size_t bits : {1024u, 2048u, 4096u}) {
    const rsa::BatchEngine engine(rsa::test_key(bits));
    const double batches = ops_per_second(
        [&] { (void)rsa::batch_sign_sha256(engine, msgs); }, budget);
    std::printf("%7zu-bit %14.1f %18.2f\n", bits, batches * 16.0,
                1e3 / batches);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "all";
  const double budget = argc > 2 ? std::strtod(argv[2], nullptr) : 0.5;

  std::printf("phissl speed: RSA sign/verify throughput "
              "(single host thread, %.1fs per row)\n",
              budget);
  if (which == "phi" || which == "all") {
    speed_system(baseline::System::kPhiOpenSSL, budget);
    speed_batch(budget);
  }
  if (which == "mpss" || which == "all") {
    speed_system(baseline::System::kMpssLibcrypto, budget);
  }
  if (which == "openssl" || which == "all") {
    speed_system(baseline::System::kOpensslDefault, budget);
  }
  return 0;
}
