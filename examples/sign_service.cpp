// sign_service: the async batched signing service as a runnable demo —
// an SSL terminator's signing backend. A Poisson open-loop load generator
// submits single sign(digest) requests against two keys; the service
// coalesces them into 16-lane BatchEngine batches (adaptive lane-filling:
// full batches dispatch immediately, partials flush after a linger
// deadline into an idle dispatch slot). Prints a live stats snapshot
// mid-run and the final counters, and verifies every returned signature.
//
//   ./sign_service [rate_rps] [requests] [linger_us]
//                  [--trace [path]] [--metrics [path]]
//   (defaults: 800, 160, 500)
//
// --trace records scoped spans (svc.sign, svc.batch, rsa.* phases, ...)
// and writes a Chrome trace for chrome://tracing / Perfetto; --metrics
// dumps the process metric registry in Prometheus text format.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "bigint/bigint.hpp"
#include "obs/export.hpp"
#include "rsa/engine.hpp"
#include "rsa/key.hpp"
#include "rsa/pkcs1.hpp"
#include "service/sign_service.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"

namespace {

void print_stats(const char* tag, const phissl::service::StatsSnapshot& s) {
  std::printf("%s requests=%llu batches=%llu (full=%llu, padded lanes=%llu) "
              "occupancy=%.1f%%\n"
              "%s queue-wait us p50/p95/p99 = %.0f/%.0f/%.0f | "
              "batch service us p50/p95 = %.0f/%.0f\n",
              tag, static_cast<unsigned long long>(s.requests),
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.full_batches),
              static_cast<unsigned long long>(s.padded_lanes),
              100.0 * s.mean_lane_occupancy, tag, s.queue_wait_us.median,
              s.queue_wait_us.p95, s.queue_wait_us.p99, s.service_us.median,
              s.service_us.p95);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phissl;
  using Clock = std::chrono::steady_clock;

  const auto obs_out = obs::ExportConfig::from_args(argc, argv);

  // Positional args, skipping the flags ExportConfig owns.
  std::vector<const char*> pos;
  for (int i = 1; i < argc; ++i) {
    bool consumed_next = false;
    if (obs::ExportConfig::owns_arg(argc, argv, i, consumed_next)) {
      if (consumed_next) ++i;
      continue;
    }
    pos.push_back(argv[i]);
  }
  const double rate = pos.size() > 0 ? std::strtod(pos[0], nullptr) : 800.0;
  const std::size_t requests =
      pos.size() > 1 ? std::strtoul(pos[1], nullptr, 10) : 160;
  const long linger_us = pos.size() > 2 ? std::strtol(pos[2], nullptr, 10) : 500;

  std::printf("== async batched signing service: %.0f req/s Poisson, "
              "%zu requests, %ld us linger ==\n",
              rate, requests, linger_us);

  service::SignServiceConfig cfg;
  cfg.max_linger = std::chrono::microseconds(linger_us);
  service::SignService svc(cfg);
  svc.add_key("rsa1024", rsa::test_key(1024));
  svc.add_key("rsa512", rsa::test_key(512));

  util::Rng rng(42);
  std::vector<util::Sha256::Digest> digests(requests);
  for (auto& d : digests) rng.fill_bytes(d.data(), d.size());

  std::vector<std::future<service::SignResult>> futs;
  futs.reserve(requests);
  Clock::time_point next_arrival = Clock::now();
  for (std::size_t i = 0; i < requests; ++i) {
    const double u =
        (static_cast<double>(rng.next_u64() >> 11) + 1.0) * 0x1.0p-53;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(u) / rate));
    std::this_thread::sleep_until(next_arrival);
    // 3:1 traffic mix across the two key shards.
    futs.push_back(svc.sign(i % 4 == 0 ? "rsa512" : "rsa1024", digests[i]));
    if (i == requests / 2) print_stats("[mid]  ", svc.stats());
  }
  svc.stop();

  std::size_t verified = 0;
  double worst_ms = 0.0;
  for (std::size_t i = 0; i < requests; ++i) {
    const service::SignResult r = futs[i].get();
    const auto& pub = svc.public_key(i % 4 == 0 ? "rsa512" : "rsa1024");
    const rsa::Engine pub_engine(pub, rsa::EngineOptions{});
    const bigint::BigInt s = bigint::BigInt::from_bytes_be(r.signature);
    if (pub_engine.public_op(s).to_bytes_be(pub.byte_size()) ==
        rsa::emsa_pkcs1_v15_from_digest(digests[i], pub.byte_size())) {
      ++verified;
    }
    worst_ms = std::max(
        worst_ms, std::chrono::duration<double, std::milli>(r.completed_at -
                                                            r.submitted_at)
                      .count());
  }

  print_stats("[final]", svc.stats());
  std::printf("verified %zu/%zu signatures against the public keys; "
              "worst end-to-end latency %.1f ms\n",
              verified, requests, worst_ms);
  if (!obs_out.write()) return 1;
  return verified == requests ? 0 : 1;
}
