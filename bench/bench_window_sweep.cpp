// E6: fixed-window width ablation. Sweeps w = 1..8 for the vector kernel
// at 2048 and 4096 bits, measured and with the analytic multiply count —
// showing the w=5-6 sweet spot that justifies the paper's choice of
// fixed-window exponentiation width.
#include <cmath>
#include <cstdio>

#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "mont/modexp.hpp"
#include "mont/vector_mont.hpp"
#include "util/random.hpp"

int main() {
  using namespace phissl;
  using bigint::BigInt;

  bench::print_header("E6 bench_window_sweep",
                      "fixed-window width ablation (vector kernel)");

  for (const std::size_t bits : {2048u, 4096u}) {
    util::Rng rng(bits);
    const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
    const BigInt base = BigInt::random_below(m, rng);
    const BigInt exp = BigInt::random_bits(bits, rng);
    const mont::VectorMontCtx ctx(m);

    std::printf("\n%zu-bit modulus (default window = %d):\n", bits,
                mont::choose_window(bits));
    std::printf("%4s %14s %16s %12s\n", "w", "muls (model)", "table entries",
                "median ms");
    for (int w = 1; w <= 8; ++w) {
      const double model_muls = std::exp2(w) - 2.0 +
                                static_cast<double>(bits) +
                                std::ceil(static_cast<double>(bits) / w) + 2.0;
      const double ms =
          bench::time_op_ms([&] { mont::fixed_window_exp(ctx, base, exp, w); },
                            3, 0.15, 100)
              .median;
      std::printf("%4d %14.0f %16.0f %12.3f\n", w, model_muls, std::exp2(w),
                  ms);
    }
  }
  return 0;
}
