// E9: batched lane-parallel throughput mode. Compares 16 RSA private ops
// run one-at-a-time on the operand-vectorized engine (latency mode)
// against one 16-lane batched run (throughput mode), plus the raw batched
// vs single-stream Montgomery exponentiation.
#include <cstdio>

#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "mont/batch.hpp"
#include "mont/modexp.hpp"
#include "mont/vector_mont.hpp"
#include "rsa/batch_engine.hpp"
#include "rsa/engine.hpp"
#include "rsa/key.hpp"
#include "util/random.hpp"

int main() {
  using namespace phissl;
  using bigint::BigInt;
  constexpr std::size_t kB = mont::BatchVectorMontCtx::kBatch;

  bench::print_header("E9 bench_batch_lanes",
                      "16-lane batched RSA vs one-at-a-time vectorized");

  std::printf("\nmodexp comparison [total ms for 16 exponentiations]\n");
  std::printf("%8s %16s %16s %12s\n", "bits", "16x single", "1x batched",
              "batch win");
  for (const std::size_t bits : {512u, 1024u, 2048u}) {
    util::Rng rng(bits);
    const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
    const mont::VectorMontCtx single(m);
    const mont::BatchVectorMontCtx batch(m);
    std::array<BigInt, kB> xs;
    for (auto& x : xs) x = BigInt::random_below(m, rng);
    const BigInt exp = BigInt::random_bits(bits, rng);

    const double single_ms =
        bench::time_op_ms(
            [&] {
              for (const auto& x : xs) {
                (void)mont::fixed_window_exp(single, x, exp);
              }
            },
            3, 0.3, 50)
            .median;
    const double batch_ms =
        bench::time_op_ms([&] { (void)batch.mod_exp(xs, exp); }, 3, 0.3, 50)
            .median;
    std::printf("%8zu %16.2f %16.2f %11.2fx\n", bits, single_ms, batch_ms,
                single_ms / batch_ms);
  }

  std::printf("\nRSA private op comparison "
              "[total ms for 16 ops | ops/s]\n");
  std::printf("%8s %22s %22s %12s\n", "bits", "16x Engine(vector)",
              "1x BatchEngine", "batch win");
  for (const std::size_t bits : {1024u, 2048u}) {
    const rsa::PrivateKey& key = rsa::test_key(bits);
    const rsa::Engine engine(key, rsa::EngineOptions{});
    const rsa::BatchEngine batch(key);
    util::Rng rng(bits);
    std::array<BigInt, kB> msgs;
    for (auto& x : msgs) x = BigInt::random_below(key.pub.n, rng);

    const double single_ms =
        bench::time_op_ms(
            [&] {
              for (const auto& x : msgs) (void)engine.private_op(x);
            },
            3, 0.3, 50)
            .median;
    const double batch_ms =
        bench::time_op_ms([&] { (void)batch.private_op(msgs); }, 3, 0.3, 50)
            .median;
    std::printf("%8zu %12.2f | %7.1f %12.2f | %7.1f %11.2fx\n", bits,
                single_ms, 16e3 / single_ms, batch_ms, 16e3 / batch_ms,
                single_ms / batch_ms);
  }
  return 0;
}
