// E11: redundant-radix digit-width ablation. The vector kernel's digit
// width trades digit count (work per sweep) against carry headroom; 2^29
// digits would be fastest but overflow the 64-bit columns beyond ~1800-bit
// moduli, which is why the library defaults to 2^27. Also reports the
// vector kernel vs the identical scalar column algorithm (mul_scalar_ref)
// to isolate the pure SIMD win at each width.
#include <cstdio>

#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "mont/vector_mont.hpp"
#include "util/random.hpp"

int main() {
  using namespace phissl;
  using bigint::BigInt;

  bench::print_header("E11 bench_radix_ablation",
                      "vector kernel digit-width sweep + SIMD-vs-scalar");

  for (const std::size_t bits : {1024u, 2048u, 4096u}) {
    util::Rng rng(bits);
    const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
    const BigInt x = BigInt::random_below(m, rng);
    const BigInt y = BigInt::random_below(m, rng);

    std::printf("\n%zu-bit modulus [us per Montgomery multiply]:\n", bits);
    std::printf("%6s %8s %12s %14s %10s\n", "radix", "digits", "vector",
                "scalar-ref", "simd win");
    for (const unsigned db : {20u, 22u, 24u, 26u, 27u, 28u, 29u}) {
      try {
        const mont::VectorMontCtx ctx(m, db);
        const auto a = ctx.to_mont(x);
        const auto b = ctx.to_mont(y);
        mont::VectorMontCtx::Rep out;
        const double vec =
            1e3 *
            bench::time_op_ms([&] { ctx.mul(a, b, out); }, 20, 0.1, 4000)
                .median;
        const double ref =
            1e3 *
            bench::time_op_ms([&] { ctx.mul_scalar_ref(a, b, out); }, 20, 0.1,
                              4000)
                .median;
        std::printf("%6u %8zu %12.2f %14.2f %9.2fx\n", db, ctx.digits(), vec,
                    ref, ref / vec);
      } catch (const std::invalid_argument&) {
        std::printf("%6u %8s %12s %14s %10s\n", db, "-", "-", "-",
                    "overflow-guard");
      }
    }
  }
  return 0;
}
