// E4 (headline table): RSA private-key operation latency and throughput
// for the three systems at the paper's key sizes. The paper reports
// PhiOpenSSL 1.6-5.7x faster than the two reference libcrypto builds.
//
// As in E3: (a) measured on this host; (b) simulated on the KNC model,
// which is the hardware the paper's ratios refer to.
#include <cstdio>

#include "baseline/systems.hpp"
#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "phisim/core_model.hpp"
#include "rsa/key.hpp"
#include "util/random.hpp"

int main() {
  using namespace phissl;
  using bigint::BigInt;

  bench::print_header("E4 bench_rsa_private",
                      "RSA private-key op (CRT sign/decrypt), three systems");

  const std::size_t sizes[] = {1024, 2048, 4096};

  std::printf("\n(a) measured on this host [median ms per op | ops/s]\n");
  std::printf("%8s", "bits");
  for (const auto s : baseline::all_systems()) {
    std::printf(" %22s", baseline::name(s));
  }
  std::printf(" %14s %14s\n", "PHI/MPSS spd", "PHI/OSSL spd");
  for (const std::size_t bits : sizes) {
    const rsa::PrivateKey& key = rsa::test_key(bits);
    util::Rng rng(bits);
    const BigInt msg = BigInt::random_below(key.pub.n, rng);
    double lat[3] = {};
    int i = 0;
    std::printf("%8zu", bits);
    for (const auto s : baseline::all_systems()) {
      const rsa::Engine engine = baseline::make_engine(s, key);
      lat[i] = bench::time_op_ms([&] { (void)engine.private_op(msg); },
                                 3, 0.3, 200)
                   .median;
      std::printf(" %12.3f | %6.1f", lat[i], 1e3 / lat[i]);
      ++i;
    }
    std::printf(" %13.2fx %13.2fx\n", lat[1] / lat[0], lat[2] / lat[0]);
  }

  std::printf("\n(b) simulated on the KNC cost model "
              "[ms per op, 4 threads/core | chip ops/s at 240 threads]\n");
  std::printf("%8s", "bits");
  for (const auto s : baseline::all_systems()) {
    std::printf(" %22s", baseline::name(s));
  }
  std::printf(" %14s %14s\n", "PHI/MPSS spd", "PHI/OSSL spd");
  const phisim::ChipModel chip;
  for (const std::size_t bits : sizes) {
    double lat[3] = {};
    int i = 0;
    std::printf("%8zu", bits);
    for (const auto s : baseline::all_systems()) {
      const auto profile =
          phisim::profile_rsa_private(bits, baseline::options_for(s));
      lat[i] = 1e3 * chip.op_latency_s(profile, 4);
      const double chip_ops = chip.throughput_ops_s(profile, 240);
      std::printf(" %12.3f | %6.0f", lat[i], chip_ops);
      ++i;
    }
    std::printf(" %13.2fx %13.2fx\n", lat[1] / lat[0], lat[2] / lat[0]);
  }
  std::printf("\npaper: RSA private-key routines 1.6-5.7x faster than the "
              "two reference systems\n");
  return 0;
}
