// E8: thread scaling on the Xeon Phi. The physical 61-core / 244-thread
// card is the hardware gate of this reproduction, so the scaling curve is
// produced by the phisim KNC cost model (DESIGN.md documents the
// substitution); host-measured thread-pool points are printed alongside as
// a functional sanity check (this host may have very few cores — the
// absolute numbers are not comparable, only the plumbing is exercised).
#include <cstdio>
#include <thread>

#include "baseline/systems.hpp"
#include "bench/harness.hpp"
#include "phisim/core_model.hpp"
#include "rsa/key.hpp"
#include "ssl/driver.hpp"

int main() {
  using namespace phissl;

  bench::print_header("E8 bench_thread_scaling",
                      "RSA-2048 private-op throughput vs thread count");

  const phisim::ChipModel chip;
  std::printf("\n(a) simulated KNC chip (%d cores x %d threads, %.2f GHz), "
              "scatter affinity [ops/s]\n",
              chip.config().cores, chip.config().threads_per_core,
              chip.config().clock_hz / 1e9);
  std::printf("%8s %14s %14s %14s\n", "threads", "PhiOpenSSL",
              "MPSS-libcrypto", "OpenSSL-default");
  for (const int threads : {1, 2, 4, 8, 15, 30, 60, 120, 180, 240}) {
    std::printf("%8d", threads);
    for (const auto s : baseline::all_systems()) {
      const auto profile =
          phisim::profile_rsa_private(2048, baseline::options_for(s));
      std::printf(" %14.1f", chip.throughput_ops_s(profile, threads));
    }
    std::printf("\n");
  }

  std::printf("\n    compact affinity, PhiOpenSSL [ops/s] "
              "(shows the fill-cores-first penalty)\n");
  std::printf("%8s %14s %14s\n", "threads", "scatter", "compact");
  const auto phi_profile = phisim::profile_rsa_private(
      2048, baseline::options_for(baseline::System::kPhiOpenSSL));
  for (const int threads : {4, 16, 60, 120, 240}) {
    std::printf("%8d %14.1f %14.1f\n", threads,
                chip.throughput_ops_s(phi_profile, threads,
                                      phisim::Affinity::kScatter),
                chip.throughput_ops_s(phi_profile, threads,
                                      phisim::Affinity::kCompact));
  }

  std::printf("\n(b) host thread-pool sanity points "
              "(host has %u hardware threads) [handshakes/s]\n",
              std::thread::hardware_concurrency());
  const rsa::Engine engine = baseline::make_engine(
      baseline::System::kPhiOpenSSL, rsa::test_key(2048));
  std::printf("%8s %14s\n", "threads", "PhiOpenSSL");
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ssl::DriverConfig cfg;
    cfg.num_handshakes = 8;
    cfg.num_threads = threads;
    const auto r = ssl::run_handshakes(engine, cfg);
    std::printf("%8zu %14.1f\n", threads, r.handshakes_per_s);
  }
  return 0;
}
