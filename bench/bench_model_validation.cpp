// Model-validation harness: the analytic CoreModel vs the trace-driven
// cycle-stepped simulation, per kernel and thread count. Not a paper
// figure — it is the evidence that the KNC cost model behind experiments
// E3/E4/E8 is internally consistent.
#include <cstdio>

#include "bench/harness.hpp"
#include "phisim/core_model.hpp"
#include "phisim/trace_sim.hpp"

int main() {
  using namespace phissl;
  using namespace phissl::phisim;

  bench::print_header("bench_model_validation",
                      "closed-form core model vs trace-driven simulation");

  const CoreModel model;
  std::printf("%-26s %8s %14s %14s %10s\n", "kernel", "threads",
              "analytic t/kc", "trace t/kc", "ratio");
  for (const std::size_t bits : {1024u, 2048u}) {
    const KernelProfile profiles[] = {profile_vector_mont_mul(bits),
                                      profile_scalar32_mont_mul(bits),
                                      profile_scalar64_mont_mul(bits)};
    for (const auto& p : profiles) {
      const auto trace = synthesize_trace(p, 3000);
      const KernelProfile scaled = profile_of_trace(trace, p.serial_fraction);
      for (int t = 1; t <= 4; ++t) {
        const double analytic = model.throughput_per_cycle(scaled, t) * 1000.0;
        const double simulated = simulate_core(trace, t).traces_per_kcycle;
        std::printf("%-26s %8d %14.3f %14.3f %9.2fx\n", p.label.c_str(), t,
                    analytic, simulated, simulated / analytic);
      }
    }
  }
  std::printf("\nratios near 1.0 validate the closed-form model used by "
              "E3/E4/E8.\n");
  return 0;
}
