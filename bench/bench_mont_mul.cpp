// E2: single Montgomery multiplication and squaring latency, all kernels,
// across modulus sizes — the innermost primitives the paper vectorizes.
// The sqr benchmarks carry a "sqr/mul" counter: the measured cost ratio of
// the dedicated squaring kernel against a general multiply of the same
// operand (ideal symmetry win is ~0.75; modexp spends most of its
// multiplies on squarings, so this ratio bounds the schedule-level gain).
#include <benchmark/benchmark.h>

#include "harness.hpp"
#include "bigint/bigint.hpp"
#include "mont/mont32.hpp"
#include "mont/mont64.hpp"
#include "mont/vector_mont.hpp"
#include "util/random.hpp"

namespace {

using phissl::bigint::BigInt;
namespace mont = phissl::mont;

template <typename Ctx>
void BM_MontMul(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  phissl::util::Rng rng(bits);
  const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
  const Ctx ctx(m);
  const auto a = ctx.to_mont(BigInt::random_below(m, rng));
  const auto b = ctx.to_mont(BigInt::random_below(m, rng));
  typename Ctx::Rep out;
  for (auto _ : state) {
    ctx.mul(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::to_string(bits) + "-bit");
}

BENCHMARK_TEMPLATE(BM_MontMul, mont::MontCtx32)
    ->Name("BM_MontMul_scalar32")->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK_TEMPLATE(BM_MontMul, mont::MontCtx64)
    ->Name("BM_MontMul_scalar64")->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK_TEMPLATE(BM_MontMul, mont::VectorMontCtx)
    ->Name("BM_MontMul_vector")->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

template <typename Ctx>
void BM_MontSqr(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  phissl::util::Rng rng(bits);
  const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
  const Ctx ctx(m);
  const auto a = ctx.to_mont(BigInt::random_below(m, rng));
  typename Ctx::Rep out;
  for (auto _ : state) {
    ctx.sqr(a, out);
    benchmark::DoNotOptimize(out.data());
  }
  // Measured sqr/mul cost ratio on the same operand (E2's squaring win).
  const double sqr_ms =
      phissl::bench::time_op_ms([&] { ctx.sqr(a, out); }, 20, 0.05).median;
  const double mul_ms =
      phissl::bench::time_op_ms([&] { ctx.mul(a, a, out); }, 20, 0.05).median;
  state.counters["sqr/mul"] = mul_ms > 0 ? sqr_ms / mul_ms : 0.0;
  state.SetLabel(std::to_string(bits) + "-bit");
}

BENCHMARK_TEMPLATE(BM_MontSqr, mont::MontCtx32)
    ->Name("BM_MontSqr_scalar32")->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK_TEMPLATE(BM_MontSqr, mont::MontCtx64)
    ->Name("BM_MontSqr_scalar64")->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);
BENCHMARK_TEMPLATE(BM_MontSqr, mont::VectorMontCtx)
    ->Name("BM_MontSqr_vector")->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

// Same column algorithm without SIMD: isolates the pure vectorization win
// on the host (the apples-to-apples ablation for the vector kernel).
void BM_MontMulVectorScalarRef(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  phissl::util::Rng rng(bits);
  const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
  const mont::VectorMontCtx ctx(m);
  const auto a = ctx.to_mont(BigInt::random_below(m, rng));
  const auto b = ctx.to_mont(BigInt::random_below(m, rng));
  mont::VectorMontCtx::Rep out;
  for (auto _ : state) {
    ctx.mul_scalar_ref(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::to_string(bits) + "-bit");
}
BENCHMARK(BM_MontMulVectorScalarRef)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
