// E7: CRT ablation. RSA private op with and without the Chinese Remainder
// Theorem, for every kernel, at 2048 bits. CRT is one of the paper's two
// named algorithmic choices; the expected win is ~3-4x (two half-size
// exponentiations replace one full-size one).
#include <cstdio>

#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "rsa/engine.hpp"
#include "rsa/key.hpp"
#include "util/random.hpp"

int main() {
  using namespace phissl;
  using bigint::BigInt;

  bench::print_header("E7 bench_crt_ablation",
                      "RSA-2048 private op: CRT vs no-CRT, per kernel");

  const rsa::PrivateKey& key = rsa::test_key(2048);
  util::Rng rng(1);
  const BigInt msg = BigInt::random_below(key.pub.n, rng);

  std::printf("%12s %14s %14s %12s\n", "kernel", "no-CRT (ms)", "CRT (ms)",
              "CRT speedup");
  for (const auto kernel :
       {rsa::Kernel::kVector, rsa::Kernel::kScalar32, rsa::Kernel::kScalar64}) {
    rsa::EngineOptions opts;
    opts.kernel = kernel;
    opts.schedule = kernel == rsa::Kernel::kVector
                        ? rsa::Schedule::kFixedWindow
                        : rsa::Schedule::kSlidingWindow;
    opts.use_crt = false;
    const rsa::Engine plain(key, opts);
    opts.use_crt = true;
    const rsa::Engine crt(key, opts);

    const double no_crt =
        phissl::bench::time_op_ms([&] { (void)plain.private_op(msg); }, 3, 0.3,
                                  100)
            .median;
    const double with_crt =
        phissl::bench::time_op_ms([&] { (void)crt.private_op(msg); }, 3, 0.3,
                                  100)
            .median;
    std::printf("%12s %14.3f %14.3f %11.2fx\n", rsa::to_string(kernel), no_crt,
                with_crt, no_crt / with_crt);
  }
  return 0;
}
