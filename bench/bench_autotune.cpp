// E15: validation of the trace-driven replay model and the autotuner it
// feeds (the model -> tune half of the observe -> model -> tune loop).
// Two questions:
//
//  1. Model fidelity: run live E13-style sweep cells (Poisson open loop
//     into a SignService) with the workload recorder on, then replay each
//     cell's own trace through phisim::replay_workload under the SAME
//     configuration and compare predicted lane occupancy and p99 queue
//     wait against the measured values. Acceptance: both within 15% on at
//     least 3 cells. The measured p99 comes from the exact per-event
//     queue_wait_ns values in the trace, not a bucketed histogram.
//
//  2. Recommendation quality: run phisim::autotune on the saturated
//     cell's trace, apply the recommended config via
//     ssl::apply_tuned_config, and re-run that cell. Acceptance: the
//     recommendation is no worse than the service defaults (p99 latency
//     within 10%, throughput within 5%, or strictly better).
//
//   ./bench_autotune [--smoke] [--json [path]]
//
// Results are recorded in bench/results/BENCH_autotune.json.
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "obs/workload.hpp"
#include "phisim/autotune.hpp"
#include "phisim/replay.hpp"
#include "rsa/batch_engine.hpp"
#include "rsa/key.hpp"
#include "service/sign_service.hpp"
#include "ssl/tuned_config.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"
#include "util/stats.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace phissl;

/// One live cell: Poisson arrivals at `rate_rps` into a fresh service with
/// the recorder running; returns the measured side plus the trace that the
/// replay model gets to work from.
struct LiveCell {
  double occupancy = 0.0;
  double throughput_rps = 0.0;
  util::Summary latency_us;  // submit -> signature ready, per request
  util::Summary wait_us;     // submit -> dispatch, exact per-event values
  std::vector<obs::WorkloadEvent> trace;
};

LiveCell run_cell(const rsa::PrivateKey& key, double rate_rps,
                  const service::SignServiceConfig& cfg, std::size_t requests,
                  util::Rng& rng) {
  obs::WorkloadRecorder& rec = obs::WorkloadRecorder::global();

  service::SignService svc(cfg);
  svc.add_key("k", key);
  std::vector<util::Sha256::Digest> digests(64);
  for (auto& d : digests) rng.fill_bytes(d.data(), d.size());

  // Warm-up: the first batches a fresh service runs pay per-thread
  // workspace allocation in the dispatch pool, several times the
  // steady-state batch cost — with only a few hundred samples that one
  // slow batch IS the p99. Run two batches per dispatch thread first,
  // outside the recorded window (the replay model prices every batch at
  // the steady-state calibrated cost).
  {
    std::vector<std::future<service::SignResult>> warm;
    for (std::size_t i = 0; i < 32 * cfg.dispatch_threads; ++i) {
      warm.push_back(svc.sign("k", digests[i % digests.size()]));
    }
    for (auto& f : warm) (void)f.get();
  }
  rec.clear();

  std::vector<std::future<service::SignResult>> futs;
  futs.reserve(requests);
  const Clock::time_point start = Clock::now();
  Clock::time_point next_arrival = start;
  for (std::size_t i = 0; i < requests; ++i) {
    const double u =
        (static_cast<double>(rng.next_u64() >> 11) + 1.0) * 0x1.0p-53;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(u) / rate_rps));
    std::this_thread::sleep_until(next_arrival);
    futs.push_back(svc.sign("k", digests[i % digests.size()]));
  }
  svc.stop();  // drains: every future below is ready

  std::vector<double> latency;
  latency.reserve(requests);
  Clock::time_point last_done = start;
  for (auto& f : futs) {
    const service::SignResult r = f.get();
    latency.push_back(
        std::chrono::duration<double, std::micro>(r.completed_at -
                                                  r.submitted_at)
            .count());
    if (r.completed_at > last_done) last_done = r.completed_at;
  }

  LiveCell c;
  c.occupancy = svc.stats().mean_lane_occupancy;
  c.throughput_rps =
      static_cast<double>(requests) /
      std::chrono::duration<double>(last_done - start).count();
  c.latency_us = util::summarize(std::move(latency));
  c.trace = rec.drain();
  std::vector<double> waits;
  waits.reserve(c.trace.size());
  for (const obs::WorkloadEvent& ev : c.trace) {
    if (!ev.shed && !ev.resumed) {
      waits.push_back(static_cast<double>(ev.queue_wait_ns) * 1e-3);
    }
  }
  c.wait_us = util::summarize(std::move(waits));
  return c;
}

double err_pct(double predicted, double measured) {
  if (measured <= 0.0) return predicted <= 0.0 ? 0.0 : 100.0;
  return 100.0 * std::fabs(predicted - measured) / measured;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_header("E15 bench_autotune",
                      "replay-model fidelity vs live sweep cells + "
                      "autotuner recommendation vs service defaults");
  auto json = bench::JsonReporter::from_args("bench_autotune", argc, argv);

  obs::WorkloadRecorder::global().set_recording(true);

  const std::size_t bits = smoke ? 512 : 1024;
  const std::size_t requests = smoke ? 96 : 320;
  const rsa::PrivateKey& key = rsa::test_key(bits);

  // Capacity calibration, exactly the bench_sign_service probe: the batch
  // cost it measures is both the rate scale for the cells and the
  // ReplayCost the model runs against.
  const rsa::BatchEngine cal(key);
  util::Rng rng(7);
  std::array<bigint::BigInt, rsa::BatchEngine::kBatch> xs;
  for (auto& x : xs) x = bigint::BigInt::random_below(key.pub.n, rng);
  bool cal_capped = false;
  const double t_batch_ms =
      bench::time_op_ms([&] { (void)cal.private_op(xs); }, 3, 0.2, 50,
                        &cal_capped)
          .median;
  const double capacity_rps =
      static_cast<double>(rsa::BatchEngine::kBatch) / (t_batch_ms * 1e-3);
  const phisim::ReplayCost cost =
      phisim::ReplayCost::from_measured(t_batch_ms * 1e3);
  std::printf("\nRSA-%zu: full 16-lane batch = %.2f ms -> capacity %.0f "
              "signs/s; replay batch cost %.0f us%s\n",
              bits, t_batch_ms, capacity_rps, cost.batch_us,
              cal_capped ? " (rep-capped calibration)" : "");
  json.add_row("calibration", std::to_string(bits),
               {{"t_batch_ms", t_batch_ms},
                {"capacity_rps", capacity_rps},
                {"batch_us", cost.batch_us}});

  // --- 1. model fidelity: live cell vs replay of its own trace -----------
  struct Cell {
    const char* label;
    double mult;
    std::chrono::microseconds linger;
  };
  const std::vector<Cell> cells =
      smoke ? std::vector<Cell>{{"linger_500us", 0.2, std::chrono::microseconds(500)},
                                {"linger_500us", 3.0, std::chrono::microseconds(500)},
                                {"linger_200us", 3.0, std::chrono::microseconds(200)}}
            : std::vector<Cell>{{"linger_500us", 0.2, std::chrono::microseconds(500)},
                                {"linger_500us", 1.0, std::chrono::microseconds(500)},
                                {"linger_500us", 3.0, std::chrono::microseconds(500)},
                                {"linger_200us", 3.0, std::chrono::microseconds(200)}};

  std::printf("\nmodel fidelity (measured vs replay of the cell's trace):\n");
  std::printf("%14s %6s | %9s %9s %6s | %11s %11s %6s\n", "cell", "rate",
              "occ meas", "occ pred", "err", "p99w meas", "p99w pred", "err");

  int within15 = 0;
  std::vector<obs::WorkloadEvent> saturated_trace;
  service::SignServiceConfig default_cfg;
  default_cfg.dispatch_threads = 1;
  double saturated_rate = 0.0;

  for (const Cell& cell : cells) {
    service::SignServiceConfig cfg = default_cfg;
    cfg.max_linger = cell.linger;
    const double rate = cell.mult * capacity_rps;
    util::Rng cell_rng(static_cast<std::uint64_t>(cell.mult * 1000) +
                       static_cast<std::uint64_t>(cell.linger.count()));
    const LiveCell live = run_cell(key, rate, cfg, requests, cell_rng);

    phisim::ReplayConfig rcfg;
    rcfg.linger_us = static_cast<double>(cell.linger.count());
    rcfg.max_batch_lanes = cfg.max_batch_lanes;
    rcfg.dispatch_slots = cfg.dispatch_threads;
    const phisim::ReplayResult pred =
        phisim::replay_workload(live.trace, rcfg, cost);

    const double occ_err = err_pct(pred.occupancy, live.occupancy);
    const double wait_err = err_pct(pred.wait_us.p99, live.wait_us.p99);
    const bool ok = occ_err <= 15.0 && wait_err <= 15.0;
    if (ok) ++within15;
    std::printf("%14s %5.1fx | %8.1f%% %8.1f%% %5.1f%% | %9.0fus %9.0fus "
                "%5.1f%% %s\n",
                cell.label, cell.mult, 100.0 * live.occupancy,
                100.0 * pred.occupancy, occ_err, live.wait_us.p99,
                pred.wait_us.p99, wait_err, ok ? "" : "<- off");
    char rate_name[48];
    std::snprintf(rate_name, sizeof rate_name, "%s_%.2fx", cell.label,
                  cell.mult);
    json.add_row("validation", rate_name,
                 {{"target_rps", rate},
                  {"measured_occupancy", live.occupancy},
                  {"predicted_occupancy", pred.occupancy},
                  {"occupancy_err_pct", occ_err},
                  {"measured_p99_wait_us", live.wait_us.p99},
                  {"predicted_p99_wait_us", pred.wait_us.p99},
                  {"p99_wait_err_pct", wait_err},
                  {"within_15pct", ok ? 1.0 : 0.0}});

    const bool saturated = cell.mult == 3.0 && cell.linger.count() == 500;
    if (saturated || (saturated_trace.empty() && &cell == &cells.back())) {
      saturated_trace = live.trace;
      saturated_rate = rate;
    }
  }

  // --- 2. recommendation vs defaults on the saturated cell ----------------
  const phisim::AutotuneReport report =
      phisim::autotune(saturated_trace, cost, phisim::AutotuneGrid{}, 1);
  service::SignServiceConfig tuned_cfg = default_cfg;
  ssl::apply_tuned_config(report.best, tuned_cfg);
  std::printf("\nautotune on the saturated trace (%zu events): linger %.0f "
              "us, %zu lanes, %zu dispatch threads\n",
              saturated_trace.size(), report.best.linger_us,
              report.best.max_batch_lanes, report.best.dispatch_threads);

  // A/B/B/A: each config leads once, so drift biases both sides equally.
  std::vector<double> def_p99, tun_p99, def_rps, tun_rps;
  for (int pair = 0; pair < 2; ++pair) {
    for (int side = 0; side < 2; ++side) {
      const bool tuned = (side == 0) == (pair % 2 == 1);
      util::Rng ab_rng(91 + static_cast<std::uint64_t>(pair));
      const LiveCell c = run_cell(key, saturated_rate,
                                  tuned ? tuned_cfg : default_cfg, requests,
                                  ab_rng);
      (tuned ? tun_p99 : def_p99).push_back(c.latency_us.p99);
      (tuned ? tun_rps : def_rps).push_back(c.throughput_rps);
    }
  }
  const double def_p99_med = util::summarize(def_p99).median;
  const double tun_p99_med = util::summarize(tun_p99).median;
  const double def_rps_med = util::summarize(def_rps).median;
  const double tun_rps_med = util::summarize(tun_rps).median;
  const bool rec_ok = tun_p99_med <= def_p99_med * 1.10 &&
                      tun_rps_med >= def_rps_med * 0.95;

  std::printf("saturated cell, defaults vs recommendation (median of 2):\n");
  std::printf("  defaults:    p99 %8.0f us, %8.0f signs/s\n", def_p99_med,
              def_rps_med);
  std::printf("  recommended: p99 %8.0f us, %8.0f signs/s\n", tun_p99_med,
              tun_rps_med);
  json.add_row("recommendation", "saturated",
               {{"tuned_linger_us", report.best.linger_us},
                {"tuned_max_batch_lanes",
                 static_cast<double>(report.best.max_batch_lanes)},
                {"tuned_dispatch_threads",
                 static_cast<double>(report.best.dispatch_threads)},
                {"default_p99_us", def_p99_med},
                {"tuned_p99_us", tun_p99_med},
                {"default_rps", def_rps_med},
                {"tuned_rps", tun_rps_med}});

  std::printf("\nacceptance readouts:\n");
  std::printf("  cells with occupancy AND p99 wait within 15%%: %d of %zu "
              "(target >= 3)\n",
              within15, cells.size());
  std::printf("  recommendation no worse than defaults: %s\n",
              rec_ok ? "yes" : "no");
  const bool ok = within15 >= 3 && rec_ok;
  std::printf("  => %s\n", ok ? "OK" : "NOT MET (rerun; 1-core host noise)");
  json.add_row("acceptance", "summary",
               {{"cells_within_15pct", static_cast<double>(within15)},
                {"recommendation_ok", rec_ok ? 1.0 : 0.0},
                {"ok", ok ? 1.0 : 0.0}});

  obs::WorkloadRecorder::global().set_recording(false);
  return json.write() ? 0 : 1;
}
