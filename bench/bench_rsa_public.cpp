// E5: RSA public-key operation (verify/encrypt, e = 65537) latency across
// systems and key sizes. Public ops are ~2 orders cheaper than private
// ops, which is why the handshake experiments are private-op bound.
#include <cstdio>

#include "baseline/systems.hpp"
#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "phisim/core_model.hpp"
#include "rsa/key.hpp"
#include "util/random.hpp"

int main() {
  using namespace phissl;
  using bigint::BigInt;

  bench::print_header("E5 bench_rsa_public",
                      "RSA public-key op (e=65537), three systems");

  std::printf("\n(a) measured on this host [median us per op]\n");
  std::printf("%8s %16s %16s %16s\n", "bits", "PhiOpenSSL", "MPSS-libcrypto",
              "OpenSSL-default");
  for (const std::size_t bits : {1024u, 2048u, 4096u}) {
    const rsa::PrivateKey& key = rsa::test_key(bits);
    util::Rng rng(bits);
    const BigInt msg = BigInt::random_below(key.pub.n, rng);
    std::printf("%8zu", bits);
    for (const auto s : baseline::all_systems()) {
      const rsa::Engine engine = baseline::make_engine(s, key);
      const double us =
          1e3 *
          bench::time_op_ms([&] { (void)engine.public_op(msg); }, 5, 0.1)
              .median;
      std::printf(" %16.1f", us);
    }
    std::printf("\n");
  }

  std::printf("\n(b) simulated KNC [us per op, 4 threads/core]\n");
  std::printf("%8s %16s %16s %16s\n", "bits", "PhiOpenSSL", "MPSS-libcrypto",
              "OpenSSL-default");
  const phisim::ChipModel chip;
  for (const std::size_t bits : {1024u, 2048u, 4096u}) {
    std::printf("%8zu", bits);
    for (const auto s : baseline::all_systems()) {
      const auto profile =
          phisim::profile_rsa_public(bits, baseline::options_for(s));
      std::printf(" %16.1f", 1e6 * chip.op_latency_s(profile, 4));
    }
    std::printf("\n");
  }
  return 0;
}
