// E13: async batched signing service under open-loop load. A Poisson
// arrival process (open loop: arrival times are drawn up front and do not
// wait for completions, like independent clients) drives single sign()
// requests at the SignService, which coalesces them into 16-lane
// BatchEngine batches. The sweep is arrival rate x flush policy:
//
//   - rate, as a multiple of the measured full-batch capacity of this
//     host (16 / t_batch signs/s);
//   - flush policy: a small linger deadline (flush partial batches after
//     max_linger) vs forced-full batching (dispatch only on 16 pending —
//     maximal lane occupancy, unbounded queueing delay at light load).
//
// The two headline readouts (recorded in bench/results/BENCH_service.json):
//   - mean lane occupancy at saturating rates must stay >= ~90% even with
//     a small linger (the queue refills faster than it drains, so batches
//     fill without the deadline firing);
//   - p99 end-to-end latency at LOW rates must be strictly lower with a
//     small linger than with forced-full batching (a lone request waits
//     max_linger instead of ~15 inter-arrival times).
//
//   ./bench_sign_service [--smoke] [--json [path]]
//                        [--trace [path]] [--metrics [path]]
//                        [--workload path]
//
// --smoke shrinks the sweep to a seconds-long CI run (512-bit key, few
// requests); --json with no path writes bench_sign_service.json. --trace
// enables span recording and writes a Chrome trace (chrome://tracing /
// Perfetto); --metrics dumps the process metric registry in Prometheus
// text format. Both are validated by tools/check_trace_json.py in CI.
// --workload turns the workload trace recorder (obs/workload.hpp) on for
// the whole sweep and writes the JSONL trace to `path` — the capture half
// of the observe -> model -> tune loop; feed the file to phissl_autotune
// (docs/AUTOTUNE.md).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.hpp"
#include "obs/export.hpp"
#include "rsa/batch_engine.hpp"
#include "rsa/key.hpp"
#include "service/sign_service.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"
#include "util/stats.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace phissl;

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

/// One sweep cell: a fresh service, N Poisson arrivals at `rate_rps`,
/// then a drain; returns what the JSON row needs.
struct CellResult {
  double achieved_rps = 0.0;    // measured submission rate
  double throughput_rps = 0.0;  // completions / (last done - first submit)
  double occupancy = 0.0;
  std::uint64_t batches = 0;
  std::uint64_t full_batches = 0;
  util::Summary latency_us;     // submit -> signature ready, per request
  util::Summary queue_wait_us;  // submit -> batch dispatch, per request
  util::Summary service_us;     // per-batch kernel time
};

CellResult run_cell(const rsa::PrivateKey& key, double rate_rps,
                    const service::SignServiceConfig& cfg,
                    std::size_t requests, util::Rng& rng) {
  service::SignService svc(cfg);
  svc.add_key("k", key);

  std::vector<util::Sha256::Digest> digests(64);
  for (auto& d : digests) rng.fill_bytes(d.data(), d.size());

  std::vector<std::future<service::SignResult>> futs;
  futs.reserve(requests);
  const Clock::time_point start = Clock::now();
  Clock::time_point next_arrival = start;
  for (std::size_t i = 0; i < requests; ++i) {
    // Exponential inter-arrival: -ln(U)/rate, U uniform on (0, 1].
    const double u =
        (static_cast<double>(rng.next_u64() >> 11) + 1.0) * 0x1.0p-53;
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(u) / rate_rps));
    std::this_thread::sleep_until(next_arrival);
    futs.push_back(svc.sign("k", digests[i % digests.size()]));
  }
  const Clock::time_point submit_end = Clock::now();
  svc.stop();  // drains: every future below is ready

  std::vector<double> latency;
  latency.reserve(requests);
  Clock::time_point last_done = start;
  for (auto& f : futs) {
    const service::SignResult r = f.get();
    latency.push_back(to_us(r.completed_at - r.submitted_at));
    if (r.completed_at > last_done) last_done = r.completed_at;
  }

  const service::StatsSnapshot s = svc.stats();
  CellResult c;
  c.achieved_rps = static_cast<double>(requests) /
                   std::chrono::duration<double>(submit_end - start).count();
  c.throughput_rps = static_cast<double>(requests) /
                     std::chrono::duration<double>(last_done - start).count();
  c.occupancy = s.mean_lane_occupancy;
  c.batches = s.batches;
  c.full_batches = s.full_batches;
  c.latency_us = util::summarize(std::move(latency));
  c.queue_wait_us = s.queue_wait_us;
  c.service_us = s.service_us;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  rsa::Backend backend = rsa::Backend::kKncVec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      const auto b = rsa::backend_from_string(argv[i + 1]);
      if (!b) {
        std::fprintf(stderr,
                     "unknown --backend %s "
                     "(knc_vec|ifma52|ifma52-portable|scalar64)\n",
                     argv[i + 1]);
        return 2;
      }
      backend = *b;
      // The portable-vs-vpmadd52 pin lives in the context constructors,
      // which read PHISSL_FORCE_BACKEND; export it here (before any engine
      // is built) so --backend ifma52-portable really measures the
      // portable kernels on IFMA hardware.
      if (std::strcmp(argv[i + 1], "ifma52-portable") == 0) {
        setenv("PHISSL_FORCE_BACKEND", "ifma52-portable", 1);
      }
    }
  }

  bench::print_header("E13 bench_sign_service",
                      "async batched signing service: arrival rate x "
                      "linger-deadline sweep (Poisson open loop)");
  auto json = bench::JsonReporter::from_args("bench_sign_service", argc, argv);
  auto obs_out = obs::ExportConfig::from_args(argc, argv);

  const std::size_t bits = smoke ? 512 : 1024;
  const std::size_t requests = smoke ? 48 : 600;
  const rsa::PrivateKey& key = rsa::test_key(bits);

  // Capacity calibration: the service cannot sign faster than back-to-back
  // full batches, so rates are expressed against 16 / t_batch.
  const rsa::BatchEngine cal(key, backend);
  std::printf("\nbatch backend: %s (requested %s)\n",
              rsa::to_string(cal.backend()), rsa::to_string(backend));
  util::Rng rng(7);
  std::array<bigint::BigInt, rsa::BatchEngine::kBatch> xs;
  for (auto& x : xs) x = bigint::BigInt::random_below(key.pub.n, rng);
  bool cal_capped = false;
  const double t_batch_ms =
      bench::time_op_ms([&] { (void)cal.private_op(xs); }, 3, 0.2, 50,
                        &cal_capped)
          .median;
  const double capacity_rps =
      static_cast<double>(rsa::BatchEngine::kBatch) / (t_batch_ms * 1e-3);
  std::printf("\nRSA-%zu: full 16-lane batch = %.2f ms -> capacity %.0f "
              "signs/s on this host%s\n",
              bits, t_batch_ms, capacity_rps,
              cal_capped ? " (rep-capped calibration)" : "");
  json.add_row("calibration", std::to_string(bits),
               {{"t_batch_ms", t_batch_ms},
                {"capacity_rps", capacity_rps},
                {"capped", cal_capped ? 1.0 : 0.0}});

  struct Policy {
    const char* label;
    service::SignServiceConfig cfg;
  };
  std::vector<Policy> policies;
  {
    service::SignServiceConfig base;
    base.dispatch_threads = 1;  // 1-core host: one batch in flight
    base.backend = backend;
    Policy small{"linger_200us", base};
    small.cfg.max_linger = std::chrono::microseconds(200);
    Policy mid{"linger_1000us", base};
    mid.cfg.max_linger = std::chrono::microseconds(1000);
    Policy full{"full_only", base};
    full.cfg.full_batches_only = true;
    if (smoke) {
      small.label = "linger_300us";
      small.cfg.max_linger = std::chrono::microseconds(300);
      policies = {small, full};
    } else {
      policies = {small, mid, full};
    }
  }
  // The low end must be genuinely light load: at 0.05x capacity the 16
  // inter-arrival gaps a forced-full batch waits for dwarf both the
  // linger deadline and the batch service time, which is the regime the
  // adaptive flush exists for. (At ~0.5x the two policies converge: the
  // queue refills within one batch service time either way.)
  const std::vector<double> rate_multipliers =
      smoke ? std::vector<double>{0.1, 3.0}
            : std::vector<double>{0.05, 0.2, 1.0, 3.0};

  // Remember the acceptance-criteria cells as the sweep runs.
  double low_rate_p99_linger = -1.0, low_rate_p99_full = -1.0;
  double saturated_occupancy = -1.0;

  for (const Policy& policy : policies) {
    std::printf("\n[%s]\n", policy.label);
    std::printf("%8s %12s %12s %10s %8s %12s %12s %12s %12s\n", "rate",
                "target/s", "achieved/s", "occup", "batches", "lat p50 us",
                "lat p95 us", "lat p99 us", "qwait p50");
    for (const double mult : rate_multipliers) {
      const double rate = mult * capacity_rps;
      util::Rng cell_rng(static_cast<std::uint64_t>(mult * 1000) +
                         (policy.cfg.full_batches_only ? 1u : 0u));
      const CellResult c =
          run_cell(key, rate, policy.cfg, requests, cell_rng);
      std::printf("%6.2fx %12.0f %12.0f %9.1f%% %8llu %12.0f %12.0f %12.0f "
                  "%12.0f\n",
                  mult, rate, c.achieved_rps, 100.0 * c.occupancy,
                  static_cast<unsigned long long>(c.batches),
                  c.latency_us.median, c.latency_us.p95, c.latency_us.p99,
                  c.queue_wait_us.median);
      char rate_name[32];
      std::snprintf(rate_name, sizeof rate_name, "%.2fx", mult);
      json.add_row(policy.label, rate_name,
                   {{"target_rps", rate},
                    {"achieved_rps", c.achieved_rps},
                    {"throughput_rps", c.throughput_rps},
                    {"occupancy", c.occupancy},
                    {"batches", static_cast<double>(c.batches)},
                    {"full_batches", static_cast<double>(c.full_batches)},
                    {"lat_p50_us", c.latency_us.median},
                    {"lat_p95_us", c.latency_us.p95},
                    {"lat_p99_us", c.latency_us.p99},
                    {"qwait_p50_us", c.queue_wait_us.median},
                    {"qwait_p99_us", c.queue_wait_us.p99},
                    {"service_p50_us", c.service_us.median}});

      const bool low_rate = mult == rate_multipliers.front();
      const bool top_rate = mult == rate_multipliers.back();
      if (low_rate && policy.cfg.full_batches_only) {
        low_rate_p99_full = c.latency_us.p99;
      }
      if (low_rate && !policy.cfg.full_batches_only &&
          low_rate_p99_linger < 0) {
        low_rate_p99_linger = c.latency_us.p99;  // smallest linger policy
      }
      if (top_rate && !policy.cfg.full_batches_only) {
        saturated_occupancy = c.occupancy;
      }
    }
  }

  std::printf("\nacceptance readouts:\n");
  std::printf("  mean lane occupancy at %.1fx capacity (linger policy): "
              "%.1f%% (target >= 90%%)\n",
              rate_multipliers.back(), 100.0 * saturated_occupancy);
  std::printf("  low-rate p99 latency: linger %.0f us vs forced-full %.0f us "
              "(linger must be strictly lower)\n",
              low_rate_p99_linger, low_rate_p99_full);
  json.add_row("acceptance", "summary",
               {{"saturated_occupancy", saturated_occupancy},
                {"low_rate_p99_linger_us", low_rate_p99_linger},
                {"low_rate_p99_full_us", low_rate_p99_full}});
  const bool ok = saturated_occupancy >= 0.90 &&
                  low_rate_p99_linger < low_rate_p99_full;
  std::printf("  => %s\n", ok ? "OK" : "NOT MET (rerun; 1-core host noise)");

  const bool wrote_obs = obs_out.write();
  return json.write() && wrote_obs ? 0 : 1;
}
