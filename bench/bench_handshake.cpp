// E10: SSL handshake throughput. Full RSA-key-transport handshakes for the
// three systems across key sizes — the end-to-end workload the paper's
// introduction motivates (handshake throughput limited by RSA private ops).
//
// Usage:
//   ./bench_handshake [--smoke] [--json [path]]
//                     [--frontend threaded|event|socket|both|all]
//                     [--trace [path]] [--metrics [path]] [--workload [path]]
//
// The termination sweep (threads x resumption ratio x scalar/batched)
// measures the lane-coalescing ClientKeyExchange path: with
// batch_private_ops on, concurrent full handshakes fill 16-lane SIMD
// batches through the shared BatchDecryptService instead of each running
// a scalar CRT decryption. The scalar rows of the same run are the
// baseline the batched rows are judged against.
//
// The event sweep (connections x reactor workers) measures the
// event-driven frontend: parked connections, not blocked threads, fill
// the batches — so lane occupancy should saturate from a handful of
// workers where the threaded frontend needs >= 16 threads. Extra rows
// inject overload (admission cap, expect nonzero shed with bounded p99),
// a resumption mix, and a DHE mix.
//
// --smoke shrinks everything to a seconds-long CI run (512-bit key, small
// counts, legacy tables skipped) while keeping every code path exercised.
// --frontend selects which sweeps run (default both). The obs export
// flags (src/obs/export.hpp) capture the run; --workload in particular
// records the driver's shed/resumed/dhe_sign tagging for the autotuner
// (docs/AUTOTUNE.md).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "baseline/systems.hpp"
#include "bench/harness.hpp"
#include "dh/dh.hpp"
#include "obs/export.hpp"
#include "ssl/dhe_handshake.hpp"
#include "ssl/handshake.hpp"
#include "util/random.hpp"
#include "phisim/core_model.hpp"
#include "rsa/key.hpp"
#include "ssl/driver.hpp"

namespace {

// One sweep cell: runs the driver and reports + records one row.
void sweep_cell(phissl::bench::JsonReporter& json, const phissl::rsa::Engine& engine,
                bool batched, std::size_t threads, double ratio,
                std::size_t handshakes, phissl::rsa::Backend batch_backend) {
  using namespace phissl;
  ssl::DriverConfig cfg;
  cfg.num_handshakes = handshakes;
  cfg.num_threads = threads;
  cfg.resumption_ratio = ratio;
  cfg.batch_private_ops = batched;
  cfg.batch_backend = batch_backend;
  const ssl::DriverReport r = ssl::run_handshakes(engine, cfg);

  char name[64];
  std::snprintf(name, sizeof(name), "%s_t%zu_r%.1f",
                batched ? "batched" : "scalar", threads, ratio);
  std::printf("%-8s %4zu %6.1f %12.1f %10.0f %10.0f %7.2f %6zu/%zu\n",
              batched ? "batched" : "scalar", threads, ratio,
              r.handshakes_per_s, r.latency_us.median, r.latency_us.p99,
              r.batch_lane_occupancy, r.resumed, r.completed);
  if (r.failed != 0) std::printf("  (FAILED %zu)\n", r.failed);
  json.add_row("termination_sweep", name,
               {{"threads", static_cast<double>(threads)},
                {"resumption_ratio", ratio},
                {"batched", batched ? 1.0 : 0.0},
                {"hs_per_s", r.handshakes_per_s},
                {"p50_us", r.latency_us.median},
                {"p99_us", r.latency_us.p99},
                {"completed", static_cast<double>(r.completed)},
                {"failed", static_cast<double>(r.failed)},
                {"resumed", static_cast<double>(r.resumed)},
                {"cache_hits", static_cast<double>(r.cache_hits)},
                {"cache_misses", static_cast<double>(r.cache_misses)},
                {"cache_evictions", static_cast<double>(r.cache_evictions)},
                {"batches", static_cast<double>(r.batches)},
                {"lane_occupancy", r.batch_lane_occupancy}});
}

// One event-sweep cell: runs the reactor frontend and reports one row.
void event_cell(phissl::bench::JsonReporter& json,
                const phissl::rsa::Engine& engine, std::size_t conns,
                std::size_t workers, double ratio, double dhe_ratio,
                std::size_t max_pending, phissl::rsa::Backend batch_backend) {
  using namespace phissl;
  ssl::DriverConfig cfg;
  cfg.frontend = ssl::Frontend::kEvent;
  cfg.num_handshakes = conns;
  cfg.event_workers = workers;
  // Slot table bound: everything up to 16k connections runs fully open;
  // beyond that, further connections start as slots free up.
  cfg.max_open_connections = std::min<std::size_t>(conns, 16384);
  if (ratio > 0.0) {
    // Resumption needs churn: a full handshake must complete and bank its
    // session before a later connection with the same identity opens. With
    // every connection open up front nothing can ever resume, so the resume
    // cell runs with a window well below the run length.
    cfg.max_open_connections = std::max<std::size_t>(workers * 16, conns / 8);
  }
  cfg.resumption_ratio = ratio;
  cfg.event_dhe_ratio = dhe_ratio;
  cfg.admission.max_pending_ops = max_pending;
  cfg.batch_backend = batch_backend;
  const ssl::DriverReport r = ssl::run_handshakes(engine, cfg);

  char name[96];
  std::snprintf(name, sizeof(name), "event_c%zu_w%zu%s%s%s", conns, workers,
                max_pending != 0 ? "_overload" : "",
                ratio > 0.0 ? "_resume" : "", dhe_ratio > 0.0 ? "_dhe" : "");
  std::printf("%7zu %3zu %10.1f %9.0f %9.0f %6.2f %7zu %6.1f %7zu/%zu\n",
              conns, workers, r.handshakes_per_s, r.latency_us.median,
              r.latency_us.p99, r.batch_lane_occupancy, r.shed,
              r.resumptions_per_wakeup, r.completed, conns);
  if (r.failed != 0) std::printf("  (FAILED %zu)\n", r.failed);
  json.add_row("event_sweep", name,
               {{"connections", static_cast<double>(conns)},
                {"workers", static_cast<double>(workers)},
                {"resumption_ratio", ratio},
                {"dhe_ratio", dhe_ratio},
                {"max_pending_ops", static_cast<double>(max_pending)},
                {"hs_per_s", r.handshakes_per_s},
                {"p50_us", r.latency_us.median},
                {"p99_us", r.latency_us.p99},
                {"completed", static_cast<double>(r.completed)},
                {"failed", static_cast<double>(r.failed)},
                {"shed", static_cast<double>(r.shed)},
                {"resumed", static_cast<double>(r.resumed)},
                {"batches", static_cast<double>(r.batches)},
                {"lane_occupancy", r.batch_lane_occupancy},
                {"resumptions_per_wakeup", r.resumptions_per_wakeup}});
}

// One socket-sweep cell: the same reactor, but over real loopback sockets
// with the in-process epoll client fleet supplying the load. Occupancy
// parity with the simulated event sweep is the acceptance bar — kernel
// byte-shuffling must not drain the batches.
void socket_cell(phissl::bench::JsonReporter& json,
                 const phissl::rsa::Engine& engine, std::size_t conns,
                 std::size_t workers, double ratio, std::size_t max_pending,
                 phissl::rsa::Backend batch_backend) {
  using namespace phissl;
  ssl::DriverConfig cfg;
  cfg.frontend = ssl::Frontend::kSocket;
  cfg.num_handshakes = conns;
  cfg.event_workers = workers;
  cfg.max_open_connections = std::min<std::size_t>(conns, 16384);
  cfg.socket_clients = std::min<std::size_t>(conns, 512);
  if (ratio > 0.0) {
    cfg.max_open_connections = std::max<std::size_t>(workers * 16, conns / 8);
    cfg.socket_clients =
        std::min(cfg.socket_clients, cfg.max_open_connections);
  }
  cfg.resumption_ratio = ratio;
  cfg.admission.max_pending_ops = max_pending;
  cfg.batch_backend = batch_backend;
  const ssl::DriverReport r = ssl::run_handshakes(engine, cfg);

  char name[96];
  std::snprintf(name, sizeof(name), "socket_c%zu_w%zu%s%s", conns, workers,
                max_pending != 0 ? "_overload" : "",
                ratio > 0.0 ? "_resume" : "");
  std::printf("%7zu %3zu %10.1f %9.0f %9.0f %6.2f %7zu %8zu %7zu/%zu\n",
              conns, workers, r.handshakes_per_s, r.latency_us.median,
              r.latency_us.p99, r.batch_lane_occupancy, r.shed, r.eagain,
              r.completed, conns);
  if (r.failed != 0) std::printf("  (FAILED %zu)\n", r.failed);
  json.add_row("socket_sweep", name,
               {{"connections", static_cast<double>(conns)},
                {"workers", static_cast<double>(workers)},
                {"resumption_ratio", ratio},
                {"max_pending_ops", static_cast<double>(max_pending)},
                {"hs_per_s", r.handshakes_per_s},
                {"p50_us", r.latency_us.median},
                {"p99_us", r.latency_us.p99},
                {"completed", static_cast<double>(r.completed)},
                {"failed", static_cast<double>(r.failed)},
                {"shed", static_cast<double>(r.shed)},
                {"resumed", static_cast<double>(r.resumed)},
                {"batches", static_cast<double>(r.batches)},
                {"lane_occupancy", r.batch_lane_occupancy},
                {"resumptions_per_wakeup", r.resumptions_per_wakeup},
                {"accepts", static_cast<double>(r.accepts)},
                {"eagain", static_cast<double>(r.eagain)},
                {"resets", static_cast<double>(r.resets)}});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace phissl;

  bool smoke = false;
  bool run_threaded = true;
  bool run_event = true;
  bool run_socket = false;  // opt-in: needs a Linux host with loopback
  // --backend pins the termination sweep's Montgomery backend: both the
  // server engine's scalar kernel and the batched-decrypt contexts, so
  // scalar and batched rows stay an apples-to-apples A/B.
  rsa::Backend backend = rsa::Backend::kKncVec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--frontend") == 0 && i + 1 < argc) {
      const char* f = argv[i + 1];
      if (std::strcmp(f, "threaded") == 0) {
        run_event = false;
      } else if (std::strcmp(f, "event") == 0) {
        run_threaded = false;
      } else if (std::strcmp(f, "socket") == 0) {
        run_threaded = false;
        run_event = false;
        run_socket = true;
      } else if (std::strcmp(f, "all") == 0) {
        run_socket = true;
      } else if (std::strcmp(f, "both") != 0) {
        std::fprintf(stderr,
                     "unknown --frontend %s (threaded|event|socket|both|all)\n",
                     f);
        return 2;
      }
    }
    if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      const auto b = rsa::backend_from_string(argv[i + 1]);
      if (!b) {
        std::fprintf(stderr,
                     "unknown --backend %s "
                     "(knc_vec|ifma52|ifma52-portable|scalar64)\n",
                     argv[i + 1]);
        return 2;
      }
      backend = *b;
      // The portable spelling maps to the same Backend enum value; the
      // portable-vs-vpmadd52 pin lives in the context constructors, which
      // read PHISSL_FORCE_BACKEND. Export it here (before any engine is
      // built) so --backend ifma52-portable really measures the portable
      // kernels on IFMA hardware instead of silently running vpmadd52.
      if (std::strcmp(argv[i + 1], "ifma52-portable") == 0) {
        setenv("PHISSL_FORCE_BACKEND", "ifma52-portable", 1);
      }
    }
  }
  auto json = bench::JsonReporter::from_args("bench_handshake", argc, argv);
  auto obs_out = obs::ExportConfig::from_args(argc, argv);

  bench::print_header("E10 bench_handshake",
                      "SSL handshake throughput, three systems");

  // --- Termination sweep: threads x resumption ratio, scalar vs batched.
  // Both modes run the SAME sweep in the SAME process, so the batched
  // rows are compared against a baseline captured under identical
  // conditions. Handshake counts scale with the thread count so every
  // configuration gives each worker enough work to fill batches.
  const std::size_t sweep_bits = smoke ? 512 : 2048;
  // 16 and 32 threads matter even on small hosts: a handshake thread
  // BLOCKS while its decryption waits in a batch, so the number of
  // threads bounds the number of lanes a batch can fill (8 threads can
  // never fill more than half a 16-lane batch). The batched path's
  // crossover therefore appears once threads >= the batch width.
  const std::vector<std::size_t> sweep_threads =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
  const std::vector<double> sweep_ratios =
      smoke ? std::vector<double>{0.0} : std::vector<double>{0.0, 0.5, 0.9};
  rsa::EngineOptions sweep_opts =
      baseline::options_for(baseline::System::kPhiOpenSSL);
  sweep_opts.kernel = rsa::kernel_for(backend);
  const rsa::Engine sweep_engine(rsa::test_key(sweep_bits), sweep_opts);

  if (run_threaded) {
    std::printf("\n    termination sweep, RSA-%zu, backend %s "
                "[hs/s | p50 us | p99 us | lane occ | resumed]\n",
                sweep_bits, rsa::to_string(backend));
    std::printf("%-8s %4s %6s %12s %10s %10s %7s %9s\n", "mode", "thr",
                "ratio", "hs/s", "p50_us", "p99_us", "occ", "resumed");
    for (const bool batched : {false, true}) {
      for (const std::size_t threads : sweep_threads) {
        for (const double ratio : sweep_ratios) {
          const std::size_t handshakes =
              smoke ? 6 * threads : (sweep_bits >= 2048 ? 12 : 24) * threads;
          sweep_cell(json, sweep_engine, batched, threads, ratio, handshakes,
                     backend);
        }
      }
    }
  }

  // --- Event sweep: connections x reactor workers, always batched (the
  // frontend exists to feed the batch service from parked connections).
  // Occupancy here is decoupled from the worker count — the acceptance
  // target is >= 0.9 from <= 4 workers at >= 1k connections, where the
  // threaded sweep above needs >= 16 threads for the same occupancy.
  if (run_event) {
    std::printf("\n    event-frontend sweep, RSA-%zu, backend %s "
                "[hs/s | p50 us | p99 us | lane occ | shed | res/wakeup]\n",
                sweep_bits, rsa::to_string(backend));
    std::printf("%7s %3s %10s %9s %9s %6s %7s %6s %9s\n", "conns", "wrk",
                "hs/s", "p50_us", "p99_us", "occ", "shed", "r/w",
                "completed");
    const std::vector<std::size_t> event_conns =
        smoke ? std::vector<std::size_t>{64, 256}
              : std::vector<std::size_t>{1024, 4096, 16384};
    const std::vector<std::size_t> event_workers =
        smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};
    for (const std::size_t conns : event_conns) {
      for (const std::size_t workers : event_workers) {
        event_cell(json, sweep_engine, conns, workers, /*ratio=*/0.0,
                   /*dhe_ratio=*/0.0, /*max_pending=*/0, backend);
      }
    }
    if (!smoke) {
      // 64k connections through 16k slots: the memory-bounded regime.
      event_cell(json, sweep_engine, 65536, 4, 0.0, 0.0, 0, backend);
    }
    // Overload injection: the admission cap forces shedding; the row's
    // point is that p99 stays bounded while shed goes nonzero, instead of
    // the queue (and tail latency) diverging.
    event_cell(json, sweep_engine, smoke ? 256 : 4096, smoke ? 2 : 4, 0.0,
               0.0, /*max_pending=*/smoke ? 8 : 48, backend);
    // Mixed workloads: resumption (abbreviated handshakes interleave with
    // full ones) and DHE (signature ops share batches with decryptions).
    event_cell(json, sweep_engine, smoke ? 64 : 4096, smoke ? 2 : 4,
               /*ratio=*/0.5, 0.0, 0, backend);
    event_cell(json, sweep_engine, smoke ? 64 : 1024, smoke ? 2 : 4, 0.0,
               /*dhe_ratio=*/0.3, 0, backend);
  }

  // --- Socket sweep: the same reactor behind real epoll loopback sockets
  // (Frontend::kSocket). The comparison row for each cell is the
  // simulated event row at the same geometry: occupancy within a few
  // percent means the kernel transport isn't draining the batches.
  if (run_socket) {
    std::printf("\n    socket-frontend sweep, RSA-%zu, backend %s "
                "[hs/s | p50 us | p99 us | lane occ | shed | eagain]\n",
                sweep_bits, rsa::to_string(backend));
    std::printf("%7s %3s %10s %9s %9s %6s %7s %8s %9s\n", "conns", "wrk",
                "hs/s", "p50_us", "p99_us", "occ", "shed", "eagain",
                "completed");
    const std::vector<std::size_t> socket_conns =
        smoke ? std::vector<std::size_t>{64} : std::vector<std::size_t>{1024};
    const std::vector<std::size_t> socket_workers =
        smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4};
    for (const std::size_t conns : socket_conns) {
      for (const std::size_t workers : socket_workers) {
        socket_cell(json, sweep_engine, conns, workers, /*ratio=*/0.0,
                    /*max_pending=*/0, backend);
      }
    }
    // Overload + resumption rows, mirroring the event sweep's.
    socket_cell(json, sweep_engine, smoke ? 64 : 1024, 2, 0.0,
                /*max_pending=*/smoke ? 8 : 48, backend);
    socket_cell(json, sweep_engine, smoke ? 64 : 1024, 2, /*ratio=*/0.5, 0,
                backend);
  }

  if (!smoke && run_threaded) {
    std::printf("\n(a) measured on this host [handshakes/s | p50 latency us], "
                "2 worker threads\n");
    std::printf("%8s", "bits");
    for (const auto s : baseline::all_systems()) {
      std::printf(" %24s", baseline::name(s));
    }
    std::printf("\n");
    for (const std::size_t bits : {1024u, 2048u}) {
      const rsa::PrivateKey& key = rsa::test_key(bits);
      std::printf("%8zu", bits);
      for (const auto s : baseline::all_systems()) {
        const rsa::Engine engine = baseline::make_engine(s, key);
        ssl::DriverConfig cfg;
        cfg.num_handshakes = bits >= 2048 ? 12 : 24;
        cfg.num_threads = 2;
        const auto r = ssl::run_handshakes(engine, cfg);
        std::printf(" %12.1f | %9.0f", r.handshakes_per_s, r.latency_us.median);
        if (r.failed != 0) std::printf("(FAILED %zu)", r.failed);
      }
      std::printf("\n");
    }

    // DHE-RSA (forward secrecy): server cost = RSA sign + 2 DH exps.
    // Single-threaded latency comparison against plain RSA key transport.
    std::printf("\n    key-exchange comparison, RSA-2048 cert, host-measured "
                "[median handshake ms]\n");
    std::printf("%-18s %14s %20s\n", "system", "RSA transport",
                "DHE-RSA (1024 grp)");
    {
      const rsa::PrivateKey& key = rsa::test_key(2048);
      for (const auto s : baseline::all_systems()) {
        const rsa::Engine server_engine = baseline::make_engine(s, key);
        const rsa::Engine client_engine(key.pub, server_engine.options());
        const dh::Dh group(dh::rfc2409_group2(),
                           baseline::options_for(s).kernel);
        util::Rng rng(9);

        const double rsa_ms =
            bench::time_op_ms(
                [&] {
                  ssl::ServerHandshake server(server_engine, rng);
                  ssl::ClientHandshake client(client_engine, rng);
                  const auto flight = server.on_client_hello(client.start());
                  const auto kex = client.on_server_hello(
                      flight.value().hello, *flight.value().certificate);
                  const auto fin = server.on_key_exchange(kex.value().first,
                                                          kex.value().second);
                  (void)client.on_server_finished(fin.value());
                },
                3, 0.2, 60)
                .median;
        const double dhe_ms =
            bench::time_op_ms(
                [&] {
                  ssl::DheServerHandshake server(server_engine, group, rng);
                  ssl::DheClientHandshake client(client_engine, rng);
                  const auto flight = server.on_client_hello(client.start());
                  const auto kex = client.on_server_flight(
                      flight.value().hello, flight.value().certificate,
                      flight.value().key_exchange);
                  const auto fin = server.on_key_exchange(kex.value().first,
                                                          kex.value().second);
                  (void)client.on_server_finished(fin.value());
                },
                3, 0.2, 60)
                .median;
        std::printf("%-18s %14.2f %20.2f\n", baseline::name(s), rsa_ms,
                    dhe_ms);
      }
    }

    // Session-resumption sweep: abbreviated handshakes skip the RSA private
    // op entirely, so throughput rises steeply with the resumption ratio —
    // and the advantage of a faster private op shrinks, which bounds how
    // much PhiOpenSSL can help a resumption-heavy terminator.
    std::printf("\n    resumption-ratio sweep, RSA-2048, PhiOpenSSL, "
                "host-measured [hs/s | %% resumed]\n");
    std::printf("%8s %14s %12s\n", "ratio", "hs/s", "resumed");
    {
      const rsa::Engine engine = baseline::make_engine(
          baseline::System::kPhiOpenSSL, rsa::test_key(2048));
      for (const double ratio : {0.0, 0.5, 0.9, 1.0}) {
        ssl::DriverConfig cfg;
        cfg.num_handshakes = 24;
        cfg.num_threads = 2;
        cfg.resumption_ratio = ratio;
        const auto r = ssl::run_handshakes(engine, cfg);
        std::printf("%8.2f %14.1f %9zu/%zu\n", ratio, r.handshakes_per_s,
                    r.resumed, r.completed);
      }
    }

    // The handshake is one private op plus one public op plus hashing; the
    // KNC projection uses the private-op profile (dominant term) at full
    // chip occupancy.
    std::printf("\n(b) simulated KNC chip at 240 threads "
                "[handshakes/s, private-op bound]\n");
    std::printf("%8s", "bits");
    for (const auto s : baseline::all_systems()) {
      std::printf(" %18s", baseline::name(s));
    }
    std::printf("\n");
    const phisim::ChipModel chip;
    for (const std::size_t bits : {1024u, 2048u, 4096u}) {
      std::printf("%8zu", bits);
      for (const auto s : baseline::all_systems()) {
        const auto priv =
            phisim::profile_rsa_private(bits, baseline::options_for(s));
        std::printf(" %18.1f", chip.throughput_ops_s(priv, 240));
      }
      std::printf("\n");
    }
  }

  const bool wrote_obs = obs_out.write();
  return json.write() && wrote_obs ? 0 : 1;
}
