// E10: SSL handshake throughput. Full RSA-key-transport handshakes for the
// three systems across key sizes — the end-to-end workload the paper's
// introduction motivates (handshake throughput limited by RSA private ops).
#include <cstdio>

#include "baseline/systems.hpp"
#include "bench/harness.hpp"
#include "dh/dh.hpp"
#include "ssl/dhe_handshake.hpp"
#include "ssl/handshake.hpp"
#include "util/random.hpp"
#include "phisim/core_model.hpp"
#include "rsa/key.hpp"
#include "ssl/driver.hpp"

int main() {
  using namespace phissl;

  bench::print_header("E10 bench_handshake",
                      "SSL handshake throughput, three systems");

  std::printf("\n(a) measured on this host [handshakes/s | p50 latency us], "
              "2 worker threads\n");
  std::printf("%8s", "bits");
  for (const auto s : baseline::all_systems()) {
    std::printf(" %24s", baseline::name(s));
  }
  std::printf("\n");
  for (const std::size_t bits : {1024u, 2048u}) {
    const rsa::PrivateKey& key = rsa::test_key(bits);
    std::printf("%8zu", bits);
    for (const auto s : baseline::all_systems()) {
      const rsa::Engine engine = baseline::make_engine(s, key);
      ssl::DriverConfig cfg;
      cfg.num_handshakes = bits >= 2048 ? 12 : 24;
      cfg.num_threads = 2;
      const auto r = ssl::run_handshakes(engine, cfg);
      std::printf(" %12.1f | %9.0f", r.handshakes_per_s, r.latency_us.median);
      if (r.failed != 0) std::printf("(FAILED %zu)", r.failed);
    }
    std::printf("\n");
  }

  // DHE-RSA (forward secrecy): server cost = RSA sign + 2 DH exps.
  // Single-threaded latency comparison against plain RSA key transport.
  std::printf("\n    key-exchange comparison, RSA-2048 cert, host-measured "
              "[median handshake ms]\n");
  std::printf("%-18s %14s %20s\n", "system", "RSA transport",
              "DHE-RSA (1024 grp)");
  {
    const rsa::PrivateKey& key = rsa::test_key(2048);
    for (const auto s : baseline::all_systems()) {
      const rsa::Engine server_engine = baseline::make_engine(s, key);
      const rsa::Engine client_engine(key.pub, server_engine.options());
      const dh::Dh group(dh::rfc2409_group2(),
                         baseline::options_for(s).kernel);
      util::Rng rng(9);

      const double rsa_ms =
          bench::time_op_ms(
              [&] {
                ssl::ServerHandshake server(server_engine, rng);
                ssl::ClientHandshake client(client_engine, rng);
                const auto flight = server.on_client_hello(client.start());
                const auto kex = client.on_server_hello(
                    flight.value().hello, *flight.value().certificate);
                const auto fin = server.on_key_exchange(kex.value().first,
                                                        kex.value().second);
                (void)client.on_server_finished(fin.value());
              },
              3, 0.2, 60)
              .median;
      const double dhe_ms =
          bench::time_op_ms(
              [&] {
                ssl::DheServerHandshake server(server_engine, group, rng);
                ssl::DheClientHandshake client(client_engine, rng);
                const auto flight = server.on_client_hello(client.start());
                const auto kex = client.on_server_flight(
                    flight.value().hello, flight.value().certificate,
                    flight.value().key_exchange);
                const auto fin = server.on_key_exchange(kex.value().first,
                                                        kex.value().second);
                (void)client.on_server_finished(fin.value());
              },
              3, 0.2, 60)
              .median;
      std::printf("%-18s %14.2f %20.2f\n", baseline::name(s), rsa_ms, dhe_ms);
    }
  }

  // Session-resumption sweep: abbreviated handshakes skip the RSA private
  // op entirely, so throughput rises steeply with the resumption ratio —
  // and the advantage of a faster private op shrinks, which bounds how
  // much PhiOpenSSL can help a resumption-heavy terminator.
  std::printf("\n    resumption-ratio sweep, RSA-2048, PhiOpenSSL, "
              "host-measured [hs/s | %% resumed]\n");
  std::printf("%8s %14s %12s\n", "ratio", "hs/s", "resumed");
  {
    const rsa::Engine engine = baseline::make_engine(
        baseline::System::kPhiOpenSSL, rsa::test_key(2048));
    for (const double ratio : {0.0, 0.5, 0.9, 1.0}) {
      ssl::DriverConfig cfg;
      cfg.num_handshakes = 24;
      cfg.num_threads = 2;
      cfg.resumption_ratio = ratio;
      const auto r = ssl::run_handshakes(engine, cfg);
      std::printf("%8.2f %14.1f %9zu/%zu\n", ratio, r.handshakes_per_s,
                  r.resumed, r.completed);
    }
  }

  // The handshake is one private op plus one public op plus hashing; the
  // KNC projection uses the private-op profile (dominant term) at full
  // chip occupancy.
  std::printf("\n(b) simulated KNC chip at 240 threads "
              "[handshakes/s, private-op bound]\n");
  std::printf("%8s", "bits");
  for (const auto s : baseline::all_systems()) {
    std::printf(" %18s", baseline::name(s));
  }
  std::printf("\n");
  const phisim::ChipModel chip;
  for (const std::size_t bits : {1024u, 2048u, 4096u}) {
    std::printf("%8zu", bits);
    for (const auto s : baseline::all_systems()) {
      const auto priv =
          phisim::profile_rsa_private(bits, baseline::options_for(s));
      std::printf(" %18.1f", chip.throughput_ops_s(priv, 240));
    }
    std::printf("\n");
  }
  return 0;
}
