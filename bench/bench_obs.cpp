// E14: cost of the observability subsystem (src/obs). Two questions:
//
//  1. Record-path nanocost: ns per Counter::inc, Histogram::record, and
//     ScopedSpan with tracing off (the always-paid price of a compiled-in
//     span site) vs tracing on. These are the primitives every
//     instrumented hot path (mont kernels, ThreadPool, SignService) pays.
//  2. End-to-end overhead: the E13 saturated signing-service configuration
//     (single dispatch worker, requests submitted back-to-back so the
//     service runs full 16-lane batches continuously) with tracing ON vs
//     OFF. Acceptance: the throughput cost of full span recording stays
//     under 2%.
//
//  3. The same on/off comparison for the workload trace recorder
//     (obs/workload.hpp), which stamps one ring event per request at
//     dispatch time. Same < 2% acceptance bar.
//
// Off/on service passes alternate (A/B/A/B...) and compare medians, so
// slow drift on a noisy host biases both sides equally.
//
//   ./bench_obs [--smoke] [--json [path]]
//
// Results are recorded in bench/results/BENCH_obs.json.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <future>
#include <vector>

#include "bench/harness.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/workload.hpp"
#include "rsa/key.hpp"
#include "service/sign_service.hpp"
#include "util/random.hpp"
#include "util/sha256.hpp"
#include "util/timing.hpp"

namespace {

using namespace phissl;

/// ns per iteration of `op` over `iters` runs (median of 5 passes).
template <typename Op>
double ns_per_op(std::size_t iters, Op&& op) {
  std::vector<double> passes;
  for (int pass = 0; pass < 5; ++pass) {
    util::Stopwatch sw;
    for (std::size_t i = 0; i < iters; ++i) op(i);
    passes.push_back(sw.elapsed_s() * 1e9 / static_cast<double>(iters));
  }
  return util::summarize(std::move(passes)).median;
}

/// One saturated service pass: all requests submitted immediately (the
/// queue always refills within a batch service time, so every dispatch is
/// a full 16-lane batch — the top-rate E13 cell). Returns signs/second.
double run_saturated_pass(const rsa::PrivateKey& key, std::size_t requests,
                          util::Rng& rng) {
  service::SignServiceConfig cfg;
  cfg.dispatch_threads = 1;
  cfg.max_linger = std::chrono::microseconds(200);
  service::SignService svc(cfg);
  svc.add_key("k", key);

  std::vector<util::Sha256::Digest> digests(64);
  for (auto& d : digests) rng.fill_bytes(d.data(), d.size());

  std::vector<std::future<service::SignResult>> futs;
  futs.reserve(requests);
  util::Stopwatch sw;
  for (std::size_t i = 0; i < requests; ++i) {
    futs.push_back(svc.sign("k", digests[i % digests.size()]));
  }
  svc.stop();
  for (auto& f : futs) (void)f.get();
  return static_cast<double>(requests) / sw.elapsed_s();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  bench::print_header("E14 bench_obs",
                      "observability record-path nanocost + tracing on/off "
                      "overhead on the saturated signing service");
  auto json = bench::JsonReporter::from_args("bench_obs", argc, argv);

  // --- 1. record-path nanocost -------------------------------------------
  const std::size_t iters = smoke ? 1'000'000 : 10'000'000;
  obs::Counter counter;
  obs::Histogram histogram;
  // Rotate across buckets so the histogram path is not branch-predictor
  // flattered by a single constant sample.
  const std::array<double, 8> samples = {0.4,  3.7,   12.0,  55.0,
                                         210.0, 980.0, 4100.0, 17000.0};

  const double counter_ns = ns_per_op(iters, [&](std::size_t) {
    counter.inc();
  });
  const double histogram_ns = ns_per_op(iters, [&](std::size_t i) {
    histogram.record(samples[i % samples.size()]);
  });
  obs::set_tracing(false);
  const double span_off_ns = ns_per_op(iters, [&](std::size_t) {
    PHISSL_OBS_SPAN("bench.noop");
  });
  obs::set_tracing(true);
  const double span_on_ns = ns_per_op(iters, [&](std::size_t) {
    PHISSL_OBS_SPAN("bench.noop");
  });
  obs::set_tracing(false);
  obs::Tracer::global().clear();

  std::printf("\nrecord-path nanocost (median of 5 x %zu iters):\n", iters);
  std::printf("  %-28s %8.2f ns/op\n", "Counter::inc", counter_ns);
  std::printf("  %-28s %8.2f ns/op\n", "Histogram::record", histogram_ns);
  std::printf("  %-28s %8.2f ns/op\n", "ScopedSpan (tracing off)",
              span_off_ns);
  std::printf("  %-28s %8.2f ns/op\n", "ScopedSpan (tracing on)", span_on_ns);
  json.add_row("record_path_ns", "primitives",
               {{"counter_inc", counter_ns},
                {"histogram_record", histogram_ns},
                {"span_tracing_off", span_off_ns},
                {"span_tracing_on", span_on_ns}});

  // --- 2. saturated-service overhead, tracing on vs off ------------------
  // Even pair count: the first-run side alternates per pair, so each side
  // leads exactly half the time.
  const std::size_t bits = smoke ? 512 : 1024;
  const std::size_t requests = smoke ? 96 : 640;
  const int pairs = smoke ? 4 : 6;
  const rsa::PrivateKey& key = rsa::test_key(bits);
  util::Rng rng(14);

  run_saturated_pass(key, requests, rng);  // warm-up (key contexts, pools)

  std::vector<double> off_rps, on_rps;
  for (int p = 0; p < pairs; ++p) {
    // Swap which side goes first each pair: on a host with frequency decay
    // the second pass of a pair runs systematically slower, which a fixed
    // off-then-on order would misattribute to tracing.
    for (int side = 0; side < 2; ++side) {
      const bool tracing = (side == 0) == (p % 2 == 0);
      obs::set_tracing(tracing);
      (tracing ? on_rps : off_rps)
          .push_back(run_saturated_pass(key, requests, rng));
    }
  }
  obs::set_tracing(false);
  obs::Tracer::global().clear();

  const double off_median = util::summarize(off_rps).median;
  const double on_median = util::summarize(on_rps).median;
  const double off_best = *std::max_element(off_rps.begin(), off_rps.end());
  const double on_best = *std::max_element(on_rps.begin(), on_rps.end());
  const double overhead_median_pct = 100.0 * (1.0 - on_median / off_median);
  // Best-pass comparison: external noise (another process, a frequency
  // dip) only ever slows a pass down, while a systematic tracing cost
  // shifts even the fastest pass. On a 1-core host this is the far more
  // stable estimator, so it carries the acceptance check.
  const double overhead_best_pct = 100.0 * (1.0 - on_best / off_best);

  std::printf("\nsaturated service (RSA-%zu, %zu requests x %d pairs):\n",
              bits, requests, pairs);
  std::printf("  tracing off: %8.0f signs/s median, %8.0f best\n", off_median,
              off_best);
  std::printf("  tracing on:  %8.0f signs/s median, %8.0f best\n", on_median,
              on_best);
  std::printf("  overhead:    %+7.2f%% median, %+7.2f%% best-pass "
              "(target < 2%% best-pass)\n",
              overhead_median_pct, overhead_best_pct);
  json.add_row("service_overhead", std::to_string(bits),
               {{"off_rps_median", off_median},
                {"on_rps_median", on_median},
                {"off_rps_best", off_best},
                {"on_rps_best", on_best},
                {"overhead_median_pct", overhead_median_pct},
                {"overhead_best_pct", overhead_best_pct}});

  const bool ok = overhead_best_pct < 2.0;
  std::printf("  => %s\n", ok ? "OK" : "NOT MET (rerun; host noise)");

  // --- 3. saturated-service overhead, workload recorder on vs off ---------
  obs::WorkloadRecorder& rec = obs::WorkloadRecorder::global();
  std::vector<double> wl_off_rps, wl_on_rps;
  for (int p = 0; p < pairs; ++p) {
    for (int side = 0; side < 2; ++side) {
      const bool recording = (side == 0) == (p % 2 == 0);
      rec.set_recording(recording);
      (recording ? wl_on_rps : wl_off_rps)
          .push_back(run_saturated_pass(key, requests, rng));
    }
  }
  rec.set_recording(false);
  rec.clear();

  const double wl_off_median = util::summarize(wl_off_rps).median;
  const double wl_on_median = util::summarize(wl_on_rps).median;
  const double wl_off_best =
      *std::max_element(wl_off_rps.begin(), wl_off_rps.end());
  const double wl_on_best =
      *std::max_element(wl_on_rps.begin(), wl_on_rps.end());
  const double wl_overhead_median_pct =
      100.0 * (1.0 - wl_on_median / wl_off_median);
  const double wl_overhead_best_pct = 100.0 * (1.0 - wl_on_best / wl_off_best);

  std::printf("\nworkload recorder (same saturated service, same pairing):\n");
  std::printf("  recorder off: %8.0f signs/s median, %8.0f best\n",
              wl_off_median, wl_off_best);
  std::printf("  recorder on:  %8.0f signs/s median, %8.0f best\n",
              wl_on_median, wl_on_best);
  std::printf("  overhead:     %+7.2f%% median, %+7.2f%% best-pass "
              "(target < 2%% best-pass)\n",
              wl_overhead_median_pct, wl_overhead_best_pct);
  json.add_row("workload_overhead", std::to_string(bits),
               {{"off_rps_median", wl_off_median},
                {"on_rps_median", wl_on_median},
                {"off_rps_best", wl_off_best},
                {"on_rps_best", wl_on_best},
                {"overhead_median_pct", wl_overhead_median_pct},
                {"overhead_best_pct", wl_overhead_best_pct}});
  const bool wl_ok = wl_overhead_best_pct < 2.0;
  std::printf("  => %s\n", wl_ok ? "OK" : "NOT MET (rerun; host noise)");

  json.add_row("acceptance", "summary",
               {{"overhead_best_pct", overhead_best_pct},
                {"workload_overhead_best_pct", wl_overhead_best_pct},
                {"target_pct", 2.0},
                {"ok", ok && wl_ok ? 1.0 : 0.0}});

  return json.write() ? 0 : 1;
}
