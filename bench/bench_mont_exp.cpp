// E3 (headline figure): full Montgomery exponentiation latency,
// PhiOpenSSL (vector kernel + fixed window) vs the two reference
// libcrypto shapes (scalar 32-bit and 64-bit CIOS + sliding window),
// across modulus sizes. The paper reports PhiOpenSSL up to 15.3x faster.
//
// Also measures the dedicated-squaring ablation: the same vector kernel
// and schedule but with every squaring routed through the general multiply
// (sqr(a) := mul(a,a)) — the pre-squaring-kernel configuration. Since
// windowed exponentiation is dominated by squarings, the PHI(no-sqr)/PHI
// ratio is the end-to-end win of the squaring kernel.
//
// Two tables are produced:
//   (a) measured on this host (AVX-512/portable backend vs host scalar) —
//       the host has a fast out-of-order 64-bit multiplier KNC never had,
//       so the scalar64 column is far stronger here than on the Phi;
//   (b) simulated on the KNC cost model (phisim) — the apples-to-apples
//       reproduction of the paper's hardware ratio.
//
// The host table also carries the radix-52 truncated-REDC backend
// (mont::IfmaMontCtx) in both its vpmadd52 and portable-u128 forms — the
// backend built to beat the host scalar64 baseline that KNC emulation
// cannot (see DESIGN.md "Radix-52 truncated REDC").
//
// Pass --json <path> to also write the rows as machine-readable JSON
// (bench/results/BENCH_mont.json is the checked-in reference run).
// Pass --smoke for a seconds-long CI-sized run (tiny rep budgets; the
// sqr-ratio regression check degrades to a warning, since a 2-rep median
// proves nothing).
#include <cstdio>
#include <cstring>
#include <functional>
#include <utility>
#include <vector>

#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "mont/ifma_mont.hpp"
#include "mont/modexp.hpp"
#include "mont/mont32.hpp"
#include "mont/mont64.hpp"
#include "mont/vector_mont.hpp"
#include "phisim/core_model.hpp"
#include "util/random.hpp"

namespace {

using phissl::bigint::BigInt;
namespace mont = phissl::mont;

// The vector context with the dedicated squaring kernel disabled: sqr
// forwards to mul(a,a). Satisfies the same Montgomery-context concept, so
// the windowed schedules run unchanged — isolating exactly the squaring
// kernel's contribution.
class NoSqrVectorCtx {
 public:
  using Rep = mont::VectorMontCtx::Rep;
  using Workspace = mont::VectorMontCtx::Workspace;

  explicit NoSqrVectorCtx(const BigInt& m) : inner_(m) {}

  [[nodiscard]] std::size_t rep_size() const { return inner_.rep_size(); }
  [[nodiscard]] const BigInt& modulus() const { return inner_.modulus(); }
  [[nodiscard]] Rep to_mont(const BigInt& x) const { return inner_.to_mont(x); }
  void to_mont(const BigInt& x, Rep& out, Workspace& ws) const {
    inner_.to_mont(x, out, ws);
  }
  [[nodiscard]] BigInt from_mont(const Rep& a) const {
    return inner_.from_mont(a);
  }
  void from_mont(const Rep& a, BigInt& out, Workspace& ws) const {
    inner_.from_mont(a, out, ws);
  }
  [[nodiscard]] Rep one_mont() const { return inner_.one_mont(); }
  [[nodiscard]] const Rep& one_mont_rep() const {
    return inner_.one_mont_rep();
  }
  void mul(const Rep& a, const Rep& b, Rep& out) const {
    inner_.mul(a, b, out);
  }
  void mul(const Rep& a, const Rep& b, Rep& out, Workspace& ws) const {
    inner_.mul(a, b, out, ws);
  }
  void sqr(const Rep& a, Rep& out) const { inner_.mul(a, a, out); }
  void sqr(const Rep& a, Rep& out, Workspace& ws) const {
    inner_.mul(a, a, out, ws);
  }

 private:
  mont::VectorMontCtx inner_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace phissl;

  bench::print_header(
      "E3 bench_mont_exp",
      "Montgomery exponentiation latency: PhiOpenSSL vs MPSS-like vs "
      "OpenSSL-like vs ifma52 (+ dedicated-squaring ablation)");
  auto json = bench::JsonReporter::from_args("bench_mont_exp", argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  // Smoke mode: just prove every backend runs end-to-end (the CI docs job
  // invokes this); the numbers are not meaningful at these budgets.
  const int min_reps = smoke ? 2 : 5;
  const double min_seconds = smoke ? 0.01 : 0.2;
  const int max_reps = smoke ? 3 : 1000;
  auto median_ms = [&](const std::function<void()>& op) {
    return bench::time_op_ms(op, min_reps, min_seconds, max_reps).median;
  };
  // Paired measurement for the sqr-ratio check: one A op then one B op
  // per rep, so clock drift and frequency excursions land on both
  // configurations alike. Two independently-timed runs on this host can
  // disagree by +-20% — far more than the effect being checked.
  auto paired_median_ms = [&](const std::function<void()>& op_a,
                              const std::function<void()>& op_b) {
    op_a();
    op_b();
    std::vector<double> sa, sb;
    util::Stopwatch total;
    int reps = 0;
    while (reps < min_reps ||
           (total.elapsed_s() < 2.0 * min_seconds && reps < max_reps)) {
      util::Stopwatch t1;
      op_a();
      sa.push_back(t1.elapsed_s() * 1e3);
      util::Stopwatch t2;
      op_b();
      sb.push_back(t2.elapsed_s() * 1e3);
      ++reps;
    }
    return std::pair{util::summarize(std::move(sa)).median,
                     util::summarize(std::move(sb)).median};
  };

  const std::size_t sizes[] = {512, 1024, 2048, 4096};
  bool sqr_regressed = false;

  std::printf("\n(a) measured on this host [median ms per exponentiation]\n");
  std::printf("%8s %10s %12s %10s %10s %10s %10s %9s %9s %9s\n", "bits",
              "PHI(vec)", "PHI(no-sqr)", "MPSS(s32)", "OSSL(s64)", "ifma52",
              "ifma52p", "sqr spd", "PHI/s64", "ifma/s64");
  for (const std::size_t bits : sizes) {
    util::Rng rng(bits);
    const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
    const BigInt base = BigInt::random_below(m, rng);
    const BigInt exp = BigInt::random_bits(bits, rng);

    const mont::VectorMontCtx vctx(m);
    const NoSqrVectorCtx nctx(m);
    const mont::MontCtx32 c32(m);
    const mont::MontCtx64 c64(m);
    const mont::IfmaMontCtx ictx(m);
    const mont::IfmaMontCtx pctx(m, /*force_portable=*/true);

    const auto [phi, phi_nosqr] =
        paired_median_ms([&] { mont::fixed_window_exp(vctx, base, exp); },
                         [&] { mont::fixed_window_exp(nctx, base, exp); });
    const double s32 =
        median_ms([&] { mont::sliding_window_exp(c32, base, exp); });
    const double s64 =
        median_ms([&] { mont::sliding_window_exp(c64, base, exp); });
    const double if52 =
        median_ms([&] { mont::fixed_window_exp(ictx, base, exp); });
    const double if52p =
        median_ms([&] { mont::fixed_window_exp(pctx, base, exp); });
    const double sqr_spd = phi_nosqr / phi;
    std::printf("%8zu %10.3f %12.3f %10.3f %10.3f %10.3f %10.3f %8.2fx "
                "%8.2fx %8.2fx\n",
                bits, phi, phi_nosqr, s32, s64, if52, if52p, sqr_spd,
                s64 / phi, s64 / if52);
    // Squaring-kernel regression check: the dedicated-sqr configuration
    // must never lose measurably to the mul-only ablation. Where the
    // small-size fallback is active (VectorMontCtx::kSqrMinDigits) the
    // two configurations run the same kernel and the guard is the
    // fallback itself, so only the larger sizes are timing-checked; 0.93
    // leaves room for timer noise (the pre-fallback 512-bit regression
    // measured 0.92 and would now trip the fallback instead).
    if (!vctx.sqr_uses_mul() && sqr_spd < 0.93) {
      std::printf("  ^ SQR REGRESSION at %zu bits: dedicated-sqr config is "
                  "%.0f%% slower than mul-only (sqr_uses_mul=%d)\n",
                  bits, 100.0 * (1.0 / sqr_spd - 1.0),
                  static_cast<int>(vctx.sqr_uses_mul()));
      sqr_regressed = true;
    }
    json.add_row("host_ms", std::to_string(bits),
                 {{"phi_vec", phi},
                  {"phi_no_sqr", phi_nosqr},
                  {"mpss_s32", s32},
                  {"ossl_s64", s64},
                  {"ifma52", if52},
                  {"ifma52_portable", if52p},
                  {"sqr_speedup", sqr_spd},
                  {"speedup_vs_s32", s32 / phi},
                  {"speedup_vs_s64", s64 / phi},
                  {"ifma52_vs_s64", s64 / if52}});
  }

  std::printf("\n(b) simulated on the KNC cost model "
              "[ms per exponentiation, 4 threads/core resident]\n");
  std::printf("%8s %12s %12s %12s %14s %14s\n", "bits", "PHI(vec)",
              "MPSS(s32)", "OSSL(s64)", "PHI/s32 spd", "PHI/s64 spd");
  const phisim::ChipModel chip;
  for (const std::size_t bits : sizes) {
    const auto phi_p = phisim::profile_modexp(
        phisim::profile_vector_mont_mul(bits), bits,
        rsa::Schedule::kFixedWindow, 0);
    const auto s32_p = phisim::profile_modexp(
        phisim::profile_scalar32_mont_mul(bits), bits,
        rsa::Schedule::kSlidingWindow, 0);
    const auto s64_p = phisim::profile_modexp(
        phisim::profile_scalar64_mont_mul(bits), bits,
        rsa::Schedule::kSlidingWindow, 0);
    const double phi = 1e3 * chip.op_latency_s(phi_p, 4);
    const double s32 = 1e3 * chip.op_latency_s(s32_p, 4);
    const double s64 = 1e3 * chip.op_latency_s(s64_p, 4);
    std::printf("%8zu %12.3f %12.3f %12.3f %13.2fx %13.2fx\n", bits, phi, s32,
                s64, s32 / phi, s64 / phi);
    json.add_row("knc_sim_ms", std::to_string(bits),
                 {{"phi_vec", phi},
                  {"mpss_s32", s32},
                  {"ossl_s64", s64},
                  {"speedup_vs_s32", s32 / phi},
                  {"speedup_vs_s64", s64 / phi}});
  }
  std::printf("\npaper: PhiOpenSSL up to 15.3x faster than the reference "
              "libcrypto builds (Montgomery exponentiation)\n");
  if (sqr_regressed && !smoke) {
    std::fprintf(stderr,
                 "bench_mont_exp: squaring-kernel regression detected\n");
    return 3;
  }
  return json.write() ? 0 : 1;
}
