// E3 (headline figure): full Montgomery exponentiation latency,
// PhiOpenSSL (vector kernel + fixed window) vs the two reference
// libcrypto shapes (scalar 32-bit and 64-bit CIOS + sliding window),
// across modulus sizes. The paper reports PhiOpenSSL up to 15.3x faster.
//
// Two tables are produced:
//   (a) measured on this host (AVX-512/portable backend vs host scalar) —
//       the host has a fast out-of-order 64-bit multiplier KNC never had,
//       so the scalar64 column is far stronger here than on the Phi;
//   (b) simulated on the KNC cost model (phisim) — the apples-to-apples
//       reproduction of the paper's hardware ratio.
#include <cstdio>

#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "mont/modexp.hpp"
#include "mont/mont32.hpp"
#include "mont/mont64.hpp"
#include "mont/vector_mont.hpp"
#include "phisim/core_model.hpp"
#include "util/random.hpp"

int main() {
  using namespace phissl;
  using bigint::BigInt;

  bench::print_header(
      "E3 bench_mont_exp",
      "Montgomery exponentiation latency: PhiOpenSSL vs MPSS-like vs "
      "OpenSSL-like");

  const std::size_t sizes[] = {512, 1024, 2048, 4096};

  std::printf("\n(a) measured on this host [median ms per exponentiation]\n");
  std::printf("%8s %12s %12s %12s %14s %14s\n", "bits", "PHI(vec)",
              "MPSS(s32)", "OSSL(s64)", "PHI/s32 spd", "PHI/s64 spd");
  for (const std::size_t bits : sizes) {
    util::Rng rng(bits);
    const BigInt m = BigInt::random_odd_exact_bits(bits, rng);
    const BigInt base = BigInt::random_below(m, rng);
    const BigInt exp = BigInt::random_bits(bits, rng);

    const mont::VectorMontCtx vctx(m);
    const mont::MontCtx32 c32(m);
    const mont::MontCtx64 c64(m);

    const double phi =
        bench::time_op_ms([&] { mont::fixed_window_exp(vctx, base, exp); })
            .median;
    const double s32 =
        bench::time_op_ms([&] { mont::sliding_window_exp(c32, base, exp); })
            .median;
    const double s64 =
        bench::time_op_ms([&] { mont::sliding_window_exp(c64, base, exp); })
            .median;
    std::printf("%8zu %12.3f %12.3f %12.3f %13.2fx %13.2fx\n", bits, phi, s32,
                s64, s32 / phi, s64 / phi);
  }

  std::printf("\n(b) simulated on the KNC cost model "
              "[ms per exponentiation, 4 threads/core resident]\n");
  std::printf("%8s %12s %12s %12s %14s %14s\n", "bits", "PHI(vec)",
              "MPSS(s32)", "OSSL(s64)", "PHI/s32 spd", "PHI/s64 spd");
  const phisim::ChipModel chip;
  for (const std::size_t bits : sizes) {
    const auto phi_p = phisim::profile_modexp(
        phisim::profile_vector_mont_mul(bits), bits,
        rsa::Schedule::kFixedWindow, 0);
    const auto s32_p = phisim::profile_modexp(
        phisim::profile_scalar32_mont_mul(bits), bits,
        rsa::Schedule::kSlidingWindow, 0);
    const auto s64_p = phisim::profile_modexp(
        phisim::profile_scalar64_mont_mul(bits), bits,
        rsa::Schedule::kSlidingWindow, 0);
    const double phi = 1e3 * chip.op_latency_s(phi_p, 4);
    const double s32 = 1e3 * chip.op_latency_s(s32_p, 4);
    const double s64 = 1e3 * chip.op_latency_s(s64_p, 4);
    std::printf("%8zu %12.3f %12.3f %12.3f %13.2fx %13.2fx\n", bits, phi, s32,
                s64, s32 / phi, s64 / phi);
  }
  std::printf("\npaper: PhiOpenSSL up to 15.3x faster than the reference "
              "libcrypto builds (Montgomery exponentiation)\n");
  return 0;
}
