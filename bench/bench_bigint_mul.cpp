// E1: big-integer multiplication kernel latency.
// Schoolbook vs Karatsuba vs the BigInt auto-dispatcher vs squaring,
// across operand sizes bracketing the Karatsuba threshold.
#include <benchmark/benchmark.h>

#include "bigint/bigint.hpp"
#include "util/random.hpp"

namespace {

using phissl::bigint::BigInt;
namespace kernels = phissl::bigint::kernels;

BigInt make_operand(std::size_t bits, std::uint64_t seed) {
  phissl::util::Rng rng(seed);
  return BigInt::random_odd_exact_bits(bits, rng);
}

void BM_MulSchoolbook(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BigInt a = make_operand(bits, 1), b = make_operand(bits, 2);
  std::vector<std::uint32_t> out(a.limb_count() + b.limb_count());
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0u);
    kernels::mul_schoolbook(a.limbs(), b.limbs(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::to_string(bits) + "-bit");
}
BENCHMARK(BM_MulSchoolbook)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

void BM_MulKaratsuba(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BigInt a = make_operand(bits, 1), b = make_operand(bits, 2);
  for (auto _ : state) {
    auto out = kernels::mul_karatsuba(a.limbs(), b.limbs());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetLabel(std::to_string(bits) + "-bit");
}
BENCHMARK(BM_MulKaratsuba)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

void BM_BigIntMulAuto(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BigInt a = make_operand(bits, 1), b = make_operand(bits, 2);
  for (auto _ : state) {
    BigInt c = a * b;
    benchmark::DoNotOptimize(c);
  }
  state.SetLabel(std::to_string(bits) + "-bit");
}
BENCHMARK(BM_BigIntMulAuto)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096)->Arg(8192);

void BM_Squaring(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BigInt a = make_operand(bits, 1);
  for (auto _ : state) {
    BigInt c = a.squared();
    benchmark::DoNotOptimize(c);
  }
  state.SetLabel(std::to_string(bits) + "-bit");
}
BENCHMARK(BM_Squaring)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void BM_DivMod(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  const BigInt a = make_operand(bits, 1);
  const BigInt b = make_operand(bits / 2, 2);
  for (auto _ : state) {
    BigInt q, r;
    BigInt::divmod(a, b, q, r);
    benchmark::DoNotOptimize(q);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(std::to_string(bits) + "-bit");
}
BENCHMARK(BM_DivMod)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
