// Shared helpers for the table-style benchmark harnesses: repeat an
// operation until a time budget is spent and report median latency, the
// way the paper's tables report per-op times.
#pragma once

#include <cstdio>
#include <functional>
#include <vector>

#include "util/stats.hpp"
#include "util/timing.hpp"

namespace phissl::bench {

/// Runs `op` repeatedly (at least min_reps times, at least min_seconds of
/// wall time, capped at max_reps) and returns per-op latency statistics in
/// milliseconds.
inline util::Summary time_op_ms(const std::function<void()>& op,
                                int min_reps = 5, double min_seconds = 0.2,
                                int max_reps = 1000) {
  op();  // warm-up
  std::vector<double> samples;
  util::Stopwatch total;
  int reps = 0;
  while (reps < min_reps ||
         (total.elapsed_s() < min_seconds && reps < max_reps)) {
    util::Stopwatch sw;
    op();
    samples.push_back(sw.elapsed_s() * 1e3);
    ++reps;
  }
  return util::summarize(std::move(samples));
}

/// Prints the standard harness header naming the experiment.
inline void print_header(const char* experiment, const char* description) {
  std::printf("=============================================================\n");
  std::printf("%s: %s\n", experiment, description);
  std::printf("=============================================================\n");
}

}  // namespace phissl::bench
