// Shared helpers for the table-style benchmark harnesses: repeat an
// operation until a time budget is spent and report median latency, the
// way the paper's tables report per-op times.
#pragma once

#include <cstdio>
#include <cstring>
#include <functional>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"
#include "util/timing.hpp"

namespace phissl::bench {

/// Runs `op` repeatedly (at least min_reps times, at least min_seconds of
/// wall time, capped at max_reps) and returns per-op latency statistics in
/// milliseconds. When `capped` is non-null it reports whether the rep cap
/// cut the run short of its time budget — a capped measurement has fewer
/// samples than requested, so downstream consumers (JSON rows, plots)
/// should treat its percentiles with suspicion.
inline util::Summary time_op_ms(const std::function<void()>& op,
                                int min_reps = 5, double min_seconds = 0.2,
                                int max_reps = 1000, bool* capped = nullptr) {
  op();  // warm-up
  std::vector<double> samples;
  util::Stopwatch total;
  int reps = 0;
  while (reps < min_reps ||
         (total.elapsed_s() < min_seconds && reps < max_reps)) {
    util::Stopwatch sw;
    op();
    samples.push_back(sw.elapsed_s() * 1e3);
    ++reps;
  }
  if (capped != nullptr) *capped = total.elapsed_s() < min_seconds;
  return util::summarize(std::move(samples));
}

/// Prints the standard harness header naming the experiment.
inline void print_header(const char* experiment, const char* description) {
  std::printf("=============================================================\n");
  std::printf("%s: %s\n", experiment, description);
  std::printf("=============================================================\n");
}

/// Machine-readable results alongside the printed tables: collects named
/// rows of numeric metrics and writes them as JSON to the path given by a
/// `--json <path>` (or `--json=<path>`) flag; a bare `--json` (no path,
/// or followed by another `--flag`) writes to `<benchmark>.json` in the
/// working directory. With no flag every call is a no-op, so harnesses
/// can report unconditionally.
class JsonReporter {
 public:
  JsonReporter() = default;

  /// Parses --json from the harness's argv. `benchmark` names the harness
  /// in the output (e.g. "bench_mont_exp").
  static JsonReporter from_args(const char* benchmark, int argc,
                                char** argv) {
    JsonReporter r;
    r.benchmark_ = benchmark;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
          r.path_ = argv[i + 1];
        } else {
          r.path_ = r.benchmark_ + ".json";
        }
      } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
        r.path_ = argv[i] + 7;
      }
    }
    return r;
  }

  [[nodiscard]] bool enabled() const { return !path_.empty(); }

  /// Records one result row. `group` names the table the row belongs to
  /// (e.g. "host_ms" vs "knc_sim_ms"); `name` identifies the row within it.
  void add_row(std::string group, std::string name,
               std::initializer_list<std::pair<const char*, double>> metrics) {
    if (!enabled()) return;
    Row row{std::move(group), std::move(name), {}};
    for (const auto& [k, v] : metrics) row.metrics.emplace_back(k, v);
    rows_.push_back(std::move(row));
  }

  /// Writes the collected rows; prints the destination path. Returns false
  /// (after printing a diagnostic) if the file cannot be written.
  bool write() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"%s\",\n  \"rows\": [",
                 benchmark_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(f, "%s\n    {\"group\": \"%s\", \"name\": \"%s\"",
                   i == 0 ? "" : ",", row.group.c_str(), row.name.c_str());
      std::fprintf(f, ", \"metrics\": {");
      for (std::size_t m = 0; m < row.metrics.size(); ++m) {
        std::fprintf(f, "%s\"%s\": %.9g", m == 0 ? "" : ", ",
                     row.metrics[m].first.c_str(), row.metrics[m].second);
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote JSON results to %s\n", path_.c_str());
    return true;
  }

 private:
  struct Row {
    std::string group, name;
    std::vector<std::pair<std::string, double>> metrics;
  };

  std::string benchmark_;
  std::string path_;
  std::vector<Row> rows_;
};

}  // namespace phissl::bench
