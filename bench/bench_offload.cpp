// E12 (deployment ablation): when does offloading RSA to the PCIe
// coprocessor beat running it on the host? Sweeps batch size and reports
// the break-even point per host speed. Host per-op latency is MEASURED on
// this machine; the card side is the phisim chip model plus the PCIe
// transfer model.
#include <cstdio>

#include "baseline/systems.hpp"
#include "bench/harness.hpp"
#include "bigint/bigint.hpp"
#include "phisim/offload_model.hpp"
#include "rsa/key.hpp"
#include "util/random.hpp"

int main() {
  using namespace phissl;
  using bigint::BigInt;

  bench::print_header("E12 bench_offload",
                      "host vs PCIe-offloaded RSA: batch break-even");

  const std::size_t bits = 2048;
  const rsa::PrivateKey& key = rsa::test_key(bits);
  const rsa::Engine host_engine =
      baseline::make_engine(baseline::System::kOpensslDefault, key);
  util::Rng rng(4);
  const BigInt msg = BigInt::random_below(key.pub.n, rng);
  const double host_op_s =
      bench::time_op_ms([&] { (void)host_engine.private_op(msg); }, 3, 0.3, 100)
          .median *
      1e-3;
  std::printf("\nhost RSA-%zu private op (measured): %.3f ms\n", bits,
              host_op_s * 1e3);

  const phisim::OffloadModel model;
  const auto phi_profile = phisim::profile_rsa_private(
      bits, baseline::options_for(baseline::System::kPhiOpenSSL));
  const std::size_t req = key.pub.byte_size(), resp = key.pub.byte_size();

  std::printf("\nbatch sweep [wall ms for the whole batch]\n");
  std::printf("%8s %14s %16s %16s\n", "batch", "card (sim)", "host x1 core",
              "host x8 cores");
  for (const std::size_t batch : {1u, 4u, 16u, 64u, 256u, 1024u, 4096u}) {
    std::printf("%8zu %14.3f %16.3f %16.3f\n", batch,
                1e3 * model.offload_batch_seconds(phi_profile, batch, req, resp),
                1e3 * phisim::OffloadModel::host_batch_seconds(host_op_s, batch, 1),
                1e3 * phisim::OffloadModel::host_batch_seconds(host_op_s, batch, 8));
  }

  std::printf("\nbreak-even batch size vs host core count:\n");
  std::printf("%12s %12s\n", "host cores", "break-even");
  for (const int cores : {1, 2, 4, 8, 16, 32}) {
    const std::size_t be =
        model.break_even_batch(phi_profile, host_op_s, cores, req, resp);
    if (be == 0) {
      std::printf("%12d %12s\n", cores, "host wins");
    } else {
      std::printf("%12d %12zu\n", cores, be);
    }
  }
  std::printf("\nshape: the card needs enough concurrent requests to amortize "
              "PCIe dispatch and fill 240 threads; beyond that it beats "
              "small host core counts outright.\n");
  return 0;
}
